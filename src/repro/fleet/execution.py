"""Deferred dispatch replay: vectorized day-blocks, optionally site-sharded.

The fleet loop's dispatch phase is the one hot phase that is *not* coupled
to population churn: allocation and churn must advance day by day (capacity
feeds the waterfill, realised utilisation feeds the cohort RNG streams),
but the battery ledger consumes only what that serial pass recorded — the
allocation matrix, each day's per-pack grid intensity, idle headroom, and
the day-start device counts.  So :class:`~repro.fleet.scheduler.
FleetSimulation` records those inputs during its serial pass and replays
the whole dispatch timeline afterwards through
:meth:`~repro.fleet.dispatch.EnergyLedger.step_block` — one vectorized pass
per run for stateless policies, one per day for forecast policies that plan
against live SoC.

Because ledger physics are elementwise per pack and forecast windows are
keyed on the fleet-global site index, the replay also *shards*: independent
sites partition into contiguous ranges, each range replays in its own
forked worker process, and the parent reassembles the column blocks in
segment order.  Every full-width reduction (per-site sums, clip
accounting, counters) happens on the assembled matrices in the parent, so
any shard count is bitwise-identical to the serial replay — the same
spec-hash + child-manifest machinery ``sweep --jobs N`` proved out, turned
inward on a single run.  Workers report spans only (no counters), so
folding their manifests via ``add_child`` never double-counts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fleet.dispatch import DISPATCH_DISCHARGE, DispatchPolicy
from repro.fleet.sites import FleetSite
from repro.telemetry import Telemetry, build_manifest, ensure_telemetry

#: Inputs inherited by forked shard workers (copy-on-write, never pickled).
_SHARD_CONTEXT: Optional[Dict[str, object]] = None


def replay_dispatch(
    sites: Sequence[FleetSite],
    dispatch: DispatchPolicy,
    intensity: np.ndarray,
    device_j: np.ndarray,
    idle_fraction: np.ndarray,
    counts_day: np.ndarray,
    step_s: float,
    site_offset: int = 0,
):
    """Replay the full dispatch timeline for one contiguous site range.

    All matrices are ``(n_steps, n_packs)`` for this range's packs;
    ``counts_day`` is the ``(n_days, n_packs)`` day-start device counts the
    serial pass recorded (the ledger's capabilities are re-derived from
    them, bitwise-identical to the live reads the per-day loop performed).
    Returns ``(battery_j, charge_j, soc, shortfall_j, fallback_pack_days)``
    — ``shortfall_j`` is the per-``(hour, pack)`` discharge energy the
    ledger could not deliver against the *policy's* (pre-override) modes,
    ready for the parent's clip accounting.
    """
    n_steps, n_packs = intensity.shape
    n_days = counts_day.shape[0]
    hours_per_day = n_steps // n_days
    ledger = dispatch.make_ledger(sites)
    if hasattr(dispatch, "site_offset"):
        dispatch.site_offset = site_offset
    modes = np.empty((n_steps, n_packs), dtype=np.int8)
    battery_j = np.empty((n_steps, n_packs))
    charge_j = np.empty((n_steps, n_packs))
    soc = np.empty((n_steps, n_packs))
    previous_intensity: Optional[np.ndarray] = None
    if dispatch.stateless_day_modes:
        # Thresholds depend only on the previous day's intensity and modes
        # only on (intensity, thresholds): every day's modes are known up
        # front, so the whole run is one step_block over per-row (churn-
        # following) capabilities.
        capacity_rows = np.empty((n_steps, n_packs))
        charge_rate_rows = np.empty((n_steps, n_packs))
        for day in range(n_days):
            rows = slice(day * hours_per_day, (day + 1) * hours_per_day)
            thresholds = dispatch.day_thresholds(previous_intensity, sites)
            modes[rows] = dispatch.day_modes(intensity[rows], thresholds)
            day_capacity, day_rate = ledger.day_capabilities(counts_day[day])
            capacity_rows[rows] = day_capacity
            charge_rate_rows[rows] = day_rate
            previous_intensity = intensity[rows]
        battery_j, charge_j, soc = ledger.step_block(
            modes, device_j, step_s, capacity_rows, charge_rate_rows, idle_fraction
        )
    else:
        # Forecast-style policies read live SoC when planning a day, so
        # modes and ledger stepping interleave — but each day still
        # advances in one vectorized step_block instead of 24 step calls.
        for day in range(n_days):
            rows = slice(day * hours_per_day, (day + 1) * hours_per_day)
            thresholds = dispatch.day_thresholds(previous_intensity, sites)
            dispatch.set_pack_counts(counts_day[day])
            day_modes = dispatch.day_modes(intensity[rows], thresholds)
            modes[rows] = day_modes
            day_capacity, day_rate = ledger.day_capabilities(counts_day[day])
            battery_j[rows], charge_j[rows], soc[rows] = ledger.step_block(
                day_modes,
                device_j[rows],
                step_s,
                day_capacity,
                day_rate,
                idle_fraction[rows],
            )
            previous_intensity = intensity[rows]
        dispatch.set_pack_counts(None)
    shortfall_j = np.where(
        modes == DISPATCH_DISCHARGE,
        np.maximum(device_j - battery_j, 0.0),
        0.0,
    )
    return (
        battery_j,
        charge_j,
        soc,
        shortfall_j,
        getattr(dispatch, "fallback_pack_days", 0),
    )


def partition_sites(
    n_sites: int, site_starts: np.ndarray, n_packs: int, shards: int
) -> List[Tuple[int, int, int, int, int]]:
    """Contiguous near-even site ranges: ``(shard, site_lo, site_hi, pack_lo, pack_hi)``.

    Never more shards than sites; earlier shards take the remainder so the
    partition is deterministic in the inputs alone.
    """
    count = max(1, min(int(shards), n_sites))
    base, rem = divmod(n_sites, count)
    ranges: List[Tuple[int, int, int, int, int]] = []
    lo = 0
    for index in range(count):
        hi = lo + base + (1 if index < rem else 0)
        pack_lo = int(site_starts[lo])
        pack_hi = int(site_starts[hi]) if hi < n_sites else n_packs
        ranges.append((index, lo, hi, pack_lo, pack_hi))
        lo = hi
    return ranges


def _run_shard(context: Dict[str, object], shard: Tuple[int, int, int, int, int]):
    """Replay one site range; returns ``(shard_index, replay_outputs, manifest)``."""
    shard_index, site_lo, site_hi, pack_lo, pack_hi = shard
    cols = slice(pack_lo, pack_hi)
    sites = list(context["sites"])[site_lo:site_hi]
    telemetry = Telemetry() if context["telemetry_enabled"] else None
    tele = ensure_telemetry(telemetry)
    n_days = context["counts_day"].shape[0]
    with tele.span("dispatch_day", calls=n_days):
        outputs = replay_dispatch(
            sites,
            context["dispatch"],
            context["intensity"][:, cols],
            context["device_j"][:, cols],
            context["idle_fraction"][:, cols],
            context["counts_day"][:, cols],
            context["step_s"],
            site_offset=site_lo,
        )
    manifest = None
    if telemetry is not None:
        manifest = build_manifest(
            telemetry,
            name=f"dispatch-shard-{shard_index}",
            extra={
                "sites": [site.name for site in sites],
                "packs": pack_hi - pack_lo,
            },
        )
    return shard_index, outputs, manifest


def _shard_worker(shard: Tuple[int, int, int, int, int]):
    """Forked-pool entry point: reads the copy-on-write context global."""
    return _run_shard(_SHARD_CONTEXT, shard)


def _fork_pool(processes: int):
    """A fork-based pool, or ``None`` when fork is unavailable."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork").Pool(processes=processes)
    except (ValueError, OSError):  # pragma: no cover - non-POSIX platforms
        return None


def execute_dispatch(
    sites: Sequence[FleetSite],
    dispatch: DispatchPolicy,
    intensity: np.ndarray,
    device_j: np.ndarray,
    idle_fraction: np.ndarray,
    counts_day: np.ndarray,
    step_s: float,
    site_starts: np.ndarray,
    shards: int = 1,
    telemetry_enabled: bool = False,
):
    """Run the dispatch replay, sharded across sites when asked.

    Returns ``(battery_j, charge_j, soc, shortfall_j, fallback_pack_days,
    children)`` with full-width ``(n_steps, n_packs)`` matrices reassembled
    in segment order and one child manifest per shard (empty when serial or
    un-instrumented).  ``dispatch.fallback_pack_days`` (when the policy has
    one) is set to the fleet-wide total so downstream counter reads see the
    same number at any shard count.
    """
    n_steps, n_packs = intensity.shape
    ranges = partition_sites(len(sites), site_starts, n_packs, shards)
    if len(ranges) == 1:
        battery_j, charge_j, soc, shortfall_j, fallback = replay_dispatch(
            sites,
            dispatch,
            intensity,
            device_j,
            idle_fraction,
            counts_day,
            step_s,
            site_offset=0,
        )
        return battery_j, charge_j, soc, shortfall_j, fallback, []

    context: Dict[str, object] = {
        "sites": list(sites),
        "dispatch": dispatch,
        "intensity": intensity,
        "device_j": device_j,
        "idle_fraction": idle_fraction,
        "counts_day": counts_day,
        "step_s": step_s,
        "telemetry_enabled": telemetry_enabled,
    }
    global _SHARD_CONTEXT
    _SHARD_CONTEXT = context
    try:
        pool = _fork_pool(len(ranges))
        if pool is None:
            # No fork on this platform: run the same shard decomposition
            # in-process — bitwise-identical, just not parallel.
            results = [_run_shard(context, shard) for shard in ranges]
        else:
            with pool:
                results = pool.map(_shard_worker, ranges)
    finally:
        _SHARD_CONTEXT = None

    battery_j = np.empty((n_steps, n_packs))
    charge_j = np.empty((n_steps, n_packs))
    soc = np.empty((n_steps, n_packs))
    shortfall_j = np.empty((n_steps, n_packs))
    fallback_total = 0
    children: List[dict] = []
    by_index = {result[0]: result for result in results}
    for shard in ranges:
        shard_index, _, _, pack_lo, pack_hi = shard
        _, outputs, manifest = by_index[shard_index]
        cols = slice(pack_lo, pack_hi)
        battery_j[:, cols] = outputs[0]
        charge_j[:, cols] = outputs[1]
        soc[:, cols] = outputs[2]
        shortfall_j[:, cols] = outputs[3]
        fallback_total += outputs[4]
        if manifest is not None:
            children.append(manifest)
    if hasattr(dispatch, "fallback_pack_days"):
        # The parent policy object never stepped a ledger in the sharded
        # path; surface the fleet-wide total where counter reads expect it.
        dispatch.fallback_pack_days = fallback_total
    return battery_j, charge_j, soc, shortfall_j, fallback_total, children
