"""Energy sources and blended intensity."""

import pytest

from repro.grid import sources


def test_paper_quoted_intensities():
    assert sources.SOLAR.carbon_intensity_g_per_kwh == pytest.approx(48.0)
    assert sources.GAS.carbon_intensity_g_per_kwh == pytest.approx(602.0)
    assert sources.CALIFORNIA_MEAN_INTENSITY_G_PER_KWH == pytest.approx(257.0)
    assert sources.ZERO_CARBON.carbon_intensity_g_per_kwh == 0.0


def test_source_lookup():
    assert sources.source_by_name("solar") is sources.SOLAR
    with pytest.raises(KeyError):
        sources.source_by_name("fusion")


def test_all_sources_nonempty_and_unique():
    names = [s.name for s in sources.all_sources()]
    assert len(names) == len(set(names))
    assert len(names) >= 8


def test_carbon_for_energy():
    assert sources.GAS.carbon_for_energy_kwh(2.0) == pytest.approx(1_204.0)
    with pytest.raises(ValueError):
        sources.GAS.carbon_for_energy_kwh(-1.0)


def test_intensity_per_joule_consistent():
    per_joule = sources.SOLAR.carbon_intensity_g_per_joule
    assert per_joule * 3.6e6 == pytest.approx(48.0)


class TestBlendedIntensity:
    def test_single_source(self):
        assert sources.blended_intensity({"solar": 10.0}) == pytest.approx(48.0)

    def test_equal_blend_is_mean(self):
        blend = sources.blended_intensity({"solar": 1.0, "natural gas": 1.0})
        assert blend == pytest.approx((48.0 + 602.0) / 2)

    def test_weighted_blend_between_extremes(self):
        blend = sources.blended_intensity({"solar": 3.0, "natural gas": 1.0})
        assert 48.0 < blend < 602.0
        assert blend == pytest.approx((3 * 48 + 602) / 4)

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            sources.blended_intensity({"solar": 0.0})

    def test_negative_generation_rejected(self):
        with pytest.raises(ValueError):
            sources.blended_intensity({"solar": -1.0, "natural gas": 2.0})
