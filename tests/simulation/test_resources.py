"""CPU and network resources."""

import pytest

from repro.simulation.engine import Simulator, Timeout
from repro.simulation.resources import CpuResource, LocalLoopback, NetworkMedium, Resource


def test_resource_fifo_admission_and_release():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    order = []

    def worker(name, hold):
        yield resource.acquire()
        order.append((name, sim.now))
        yield Timeout(hold)
        resource.release()

    sim.spawn(worker("a", 1.0))
    sim.spawn(worker("b", 1.0))
    sim.run()
    assert order == [("a", 0.0), ("b", 1.0)]
    assert resource.total_acquisitions == 2
    assert resource.queue_length == 0


def test_release_without_acquire_raises():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    with pytest.raises(RuntimeError):
        resource.release()


def test_busy_time_and_utilization():
    sim = Simulator()
    cpu = CpuResource(sim, cores=2, speed=1.0)

    def worker():
        yield from cpu.execute(1_000.0)  # one second of work

    sim.spawn(worker())
    sim.spawn(worker())
    sim.run()
    assert sim.now == pytest.approx(1.0)
    assert cpu.busy_time(0.0, 1.0) == pytest.approx(2.0)
    assert cpu.utilization(0.0, 1.0) == pytest.approx(1.0)


def test_utilization_timeline_windows():
    sim = Simulator()
    cpu = CpuResource(sim, cores=1, speed=1.0)

    def worker():
        yield from cpu.execute(500.0)

    sim.spawn(worker())
    sim.run_until(2.0)
    times, values = cpu.utilization_timeline(1.0, end=2.0)
    assert len(times) == 2
    assert values[0] == pytest.approx(0.5)
    assert values[1] == pytest.approx(0.0)


def test_cpu_speed_scales_service_time():
    sim = Simulator()
    slow = CpuResource(sim, cores=1, speed=0.5)
    assert slow.service_time_s(10.0) == pytest.approx(0.02)
    fast = CpuResource(sim, cores=1, speed=2.0)
    assert fast.service_time_s(10.0) == pytest.approx(0.005)
    with pytest.raises(ValueError):
        CpuResource(sim, cores=1, speed=0.0)
    with pytest.raises(ValueError):
        slow.service_time_s(-1.0)


def test_cpu_execute_zero_work_is_noop():
    sim = Simulator()
    cpu = CpuResource(sim, cores=1, speed=1.0)

    def worker():
        yield from cpu.execute(0.0)
        yield Timeout(0.1)

    sim.spawn(worker())
    sim.run()
    assert cpu.total_acquisitions == 0


def test_network_transfer_time_and_latency():
    sim = Simulator()
    net = NetworkMedium(sim, bandwidth_bytes_per_s=1_000.0, latency_s=0.5)
    done = []

    def sender():
        yield from net.transfer(500.0)
        done.append(sim.now)

    sim.spawn(sender())
    sim.run()
    assert done[0] == pytest.approx(1.0)  # 0.5 s serialisation + 0.5 s latency
    assert net.bytes_transferred == pytest.approx(500.0)


def test_network_transfers_serialise_through_medium():
    sim = Simulator()
    net = NetworkMedium(sim, bandwidth_bytes_per_s=1_000.0, latency_s=0.0)
    completions = []

    def sender(name):
        yield from net.transfer(1_000.0)
        completions.append((name, sim.now))

    sim.spawn(sender("a"))
    sim.spawn(sender("b"))
    sim.run()
    assert completions[0][1] == pytest.approx(1.0)
    assert completions[1][1] == pytest.approx(2.0)


def test_zero_byte_transfer_only_pays_latency():
    sim = Simulator()
    net = NetworkMedium(sim, bandwidth_bytes_per_s=1_000.0, latency_s=0.25)
    done = []

    def sender():
        yield from net.transfer(0.0)
        done.append(sim.now)

    sim.spawn(sender())
    sim.run()
    assert done[0] == pytest.approx(0.25)
    assert net.bytes_transferred == 0.0


def test_loopback_is_effectively_instant():
    sim = Simulator()
    loopback = LocalLoopback(sim)
    assert loopback.transmission_time_s(10_000) < 1e-4
    assert loopback.latency_s < 1e-3


def test_network_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        NetworkMedium(sim, bandwidth_bytes_per_s=0.0)
    with pytest.raises(ValueError):
        NetworkMedium(sim, bandwidth_bytes_per_s=10.0, latency_s=-1.0)
    net = NetworkMedium(sim, bandwidth_bytes_per_s=10.0)
    with pytest.raises(ValueError):
        net.transmission_time_s(-1.0)
