"""Cartesian scenario sweeps: grid expansion, parsing, and tabulation."""

import numpy as np
import pytest

from repro.scenarios import (
    ScenarioValidationError,
    parse_sweep_override,
    spec_hash,
    sweep_scenario,
)
from repro.scenarios.spec import (
    DemandSpec,
    DeviceMixSpec,
    RoutingSpec,
    ScenarioSpec,
    SiteSpec,
    TraceSpec,
)


def tiny_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="sweep-tiny",
        sites=(
            SiteSpec(
                name="dirty",
                trace=TraceSpec(kind="constant", intensity_g_per_kwh=600.0, n_days=2),
                devices=DeviceMixSpec(count=5),
            ),
            SiteSpec(
                name="clean",
                trace=TraceSpec(kind="constant", intensity_g_per_kwh=30.0, n_days=2),
                devices=DeviceMixSpec(count=5),
            ),
        ),
        routing=RoutingSpec(policy="round-robin", latency_probe_s=0.0),
        demand=DemandSpec(fraction_of_capacity=0.4),
        duration_days=1,
    )


class TestSweepScenario:
    def test_cartesian_grid_is_fully_expanded(self):
        sweep = sweep_scenario(
            tiny_spec(),
            {
                "routing.policy": ["round-robin", "greedy-lowest-intensity"],
                "demand.fraction_of_capacity": [0.3, 0.6],
            },
        )
        assert len(sweep.cells) == 4
        assert sweep.axis_names == ("routing.policy", "demand.fraction_of_capacity")
        combos = {cell.overrides for cell in sweep.cells}
        assert len(combos) == 4
        for cell in sweep.cells:
            overrides = dict(cell.overrides)
            assert cell.result.spec.routing.policy == overrides["routing.policy"]
            assert cell.result.spec.demand.fraction_of_capacity == pytest.approx(
                overrides["demand.fraction_of_capacity"]
            )

    def test_greedy_wins_the_grid_on_asymmetric_sites(self):
        sweep = sweep_scenario(
            tiny_spec(),
            {"routing.policy": ["round-robin", "greedy-lowest-intensity"]},
        )
        best = sweep.best_cell()
        assert dict(best.overrides)["routing.policy"] == "greedy-lowest-intensity"

    def test_table_has_one_row_per_cell(self):
        sweep = sweep_scenario(
            tiny_spec(), {"duration_days": [1, 2]}
        )
        headers, rows = sweep.table()
        assert headers[0] == "duration_days"
        assert "CCI (g/req)" in headers
        assert len(rows) == 2
        assert rows[0][0] == "1" and rows[1][0] == "2"

    def test_sweep_is_deterministic(self):
        axes = {"routing.policy": ["round-robin", "greedy-lowest-intensity"]}
        first = sweep_scenario(tiny_spec(), axes)
        second = sweep_scenario(tiny_spec(), axes)
        for a, b in zip(first.cells, second.cells):
            assert a.cci_g_per_request == b.cci_g_per_request
            assert np.array_equal(
                a.result.report.served_rps, b.result.report.served_rps
            )

    def test_empty_axes_rejected(self):
        with pytest.raises(ScenarioValidationError, match="at least one"):
            sweep_scenario(tiny_spec(), {})
        with pytest.raises(ScenarioValidationError, match="at least one value"):
            sweep_scenario(tiny_spec(), {"duration_days": []})

    def test_bad_path_fails_fast(self):
        with pytest.raises(ScenarioValidationError, match="duration_dayz"):
            sweep_scenario(tiny_spec(), {"duration_dayz": [1, 2]})

    def test_bad_policy_anywhere_in_grid_fails_before_any_run(self):
        """A typo in the *last* axis value must not waste the earlier cells."""
        with pytest.raises(ScenarioValidationError, match="routing.policy"):
            sweep_scenario(
                tiny_spec(),
                {"routing.policy": ["round-robin", "clairvoyant"]},
            )


class TestParallelSweep:
    AXES = {
        "routing.policy": ["round-robin", "greedy-lowest-intensity"],
        "demand.fraction_of_capacity": [0.3, 0.6],
    }

    def test_parallel_results_are_bitwise_identical_to_serial(self):
        serial = sweep_scenario(tiny_spec(), self.AXES)
        parallel = sweep_scenario(tiny_spec(), self.AXES, jobs=2)
        assert parallel.axes == serial.axes
        for ours, theirs in zip(parallel.cells, serial.cells):
            assert ours.overrides == theirs.overrides
            assert ours.result.spec == theirs.result.spec
            assert ours.cci_g_per_request == theirs.cci_g_per_request
            assert np.array_equal(
                ours.result.report.served_rps, theirs.result.report.served_rps
            )
            assert np.array_equal(
                ours.result.report.operational_g, theirs.result.report.operational_g
            )

    def test_jobs_one_is_the_serial_path(self):
        serial = sweep_scenario(tiny_spec(), {"duration_days": [1, 2]})
        one_job = sweep_scenario(tiny_spec(), {"duration_days": [1, 2]}, jobs=1)
        for ours, theirs in zip(one_job.cells, serial.cells):
            assert ours.cci_g_per_request == theirs.cci_g_per_request

    def test_more_jobs_than_cells_is_fine(self):
        sweep = sweep_scenario(tiny_spec(), {"duration_days": [1, 2]}, jobs=8)
        assert len(sweep.cells) == 2

    def test_duplicate_cells_share_one_simulation(self):
        """Axis values that collapse to the same spec hash equal results."""
        sweep = sweep_scenario(
            tiny_spec(), {"duration_days": [1, 1, 2]}, jobs=2
        )
        assert len(sweep.cells) == 3
        assert spec_hash(sweep.cells[0].result.spec) == spec_hash(
            sweep.cells[1].result.spec
        )
        assert (
            sweep.cells[0].cci_g_per_request == sweep.cells[1].cci_g_per_request
        )

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ScenarioValidationError, match="jobs"):
            sweep_scenario(tiny_spec(), {"duration_days": [1, 2]}, jobs=0)

    def test_spec_hash_is_content_addressed(self):
        assert spec_hash(tiny_spec()) == spec_hash(tiny_spec())
        changed = tiny_spec().with_overrides({"duration_days": 2})
        assert spec_hash(changed) != spec_hash(tiny_spec())


class TestParseSweepOverride:
    def test_comma_separated_values(self):
        key, values = parse_sweep_override("routing.policy=round-robin,marginal-cci")
        assert key == "routing.policy"
        assert values == ["round-robin", "marginal-cci"]

    def test_numeric_values_decode(self):
        key, values = parse_sweep_override("demand.fraction_of_capacity=0.3,0.6")
        assert key == "demand.fraction_of_capacity"
        assert values == [0.3, 0.6]

    def test_single_value_is_one_element_axis(self):
        assert parse_sweep_override("duration_days=2") == ("duration_days", [2])

    def test_json_list_form(self):
        assert parse_sweep_override("duration_days=[1,2,3]") == (
            "duration_days",
            [1, 2, 3],
        )

    def test_quoted_string_keeps_its_commas(self):
        assert parse_sweep_override('sites.0.name="austin,tx"') == (
            "sites.0.name",
            ["austin,tx"],
        )

    def test_missing_equals_rejected(self):
        with pytest.raises(ScenarioValidationError, match="dotted.path"):
            parse_sweep_override("routing.policy")


class TestHindsightTwinSharing:
    """Forecast cells sharing one hindsight twin per forecast-stripped group."""

    @staticmethod
    def _forecast_spec():
        from repro.scenarios import get_scenario

        return get_scenario("forecast-buffer").with_overrides(
            {
                "duration_days": 2,
                "sites.0.devices.count": 10,
                "sites.1.devices.count": 10,
                "routing.latency_probe_s": 0,
                "forecast.model": "noisy",
                "forecast.noise_sigma": 0.3,
            }
        )

    def test_shared_twins_are_bitwise_identical_to_per_cell_twins(self):
        axes = {"forecast.noise_sigma": [0.3, 0.6]}
        shared = sweep_scenario(self._forecast_spec(), axes)
        per_cell = sweep_scenario(
            self._forecast_spec(), axes, share_hindsight=False
        )
        for ours, theirs in zip(shared.cells, per_cell.cells):
            assert ours.result.summary_dict() == theirs.result.summary_dict()
            assert (
                ours.result.report.hindsight_avoided_g
                == theirs.result.report.hindsight_avoided_g
            )
            assert np.array_equal(
                ours.result.report.battery_kwh, theirs.result.report.battery_kwh
            )

    def test_sharing_simulates_fewer_fleets(self):
        """One twin per group instead of one per cell."""
        from repro.fleet.scheduler import FleetSimulation

        counts = []

        def counted(run):
            def wrapper(self, n_days):
                counts[-1] += 1
                return run(self, n_days)

            return wrapper

        original = FleetSimulation.run
        FleetSimulation.run = counted(original)
        try:
            axes = {"forecast.noise_sigma": [0.3, 0.6]}
            counts.append(0)
            sweep_scenario(self._forecast_spec(), axes)
            with_sharing = counts[-1]
            counts.append(0)
            sweep_scenario(self._forecast_spec(), axes, share_hindsight=False)
            without_sharing = counts[-1]
        finally:
            FleetSimulation.run = original
        # Sharing: one perfect twin + one main run per cell = 3.
        # Per-cell: each of the two cells pays main + its own twin = 4.
        assert with_sharing == 3
        assert without_sharing == 4

    def test_twin_reuses_a_grid_cell_when_it_is_one(self):
        """A grid that contains the perfect cell needs no extra twin run."""
        from repro.fleet.scheduler import FleetSimulation

        counts = {"n": 0}
        original = FleetSimulation.run

        def wrapper(self, n_days):
            counts["n"] += 1
            return original(self, n_days)

        FleetSimulation.run = wrapper
        try:
            sweep = sweep_scenario(
                self._forecast_spec(),
                {"forecast.model": ["perfect", "noisy"]},
            )
        finally:
            FleetSimulation.run = original
        # perfect cell (its own hindsight, 1 run) doubles as the noisy
        # cell's twin; the noisy cell adds one more run.
        assert counts["n"] == 2
        perfect, noisy = sweep.cells
        assert noisy.result.report.hindsight_avoided_g == pytest.approx(
            perfect.result.report.carbon_avoided_g()
        )
