"""JSONL sink: persist one run's telemetry and read it back.

The file format is one JSON record per line.  Line 1 is the run manifest
(:mod:`repro.telemetry.manifest`); every further line is a span record::

    {"kind": "span", "path": "scenario/main_run/dispatch_day",
     "depth": 3, "start_s": 0.412, "duration_s": 0.0021, "index": 17}

Spans are written in completion order (children before parents), exactly as
recorded.  :func:`read_jsonl` and :func:`validate_jsonl` round-trip and
check the same format, so the schema test, the CLI validator, and CI all
agree on what a valid file is.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.ioutils import atomic_write_lines
from repro.telemetry.core import NullTelemetry, Span, Telemetry
from repro.telemetry.manifest import (
    TelemetryValidationError,
    build_manifest,
    validate_manifest,
)

_SPAN_FIELDS = {
    "path": str,
    "depth": int,
    "start_s": (int, float),
    "duration_s": (int, float),
    "index": int,
}


def span_record(span: Span) -> Dict[str, object]:
    """The JSONL record for one span."""
    return {
        "kind": "span",
        "path": span.path,
        "depth": span.depth,
        "start_s": span.start_s,
        "duration_s": span.duration_s,
        "index": span.index,
        "calls": span.calls,
    }


def _span_from_record(record: Dict[str, object]) -> Span:
    # "calls" is additive to the format; files written before it default to 1.
    return Span(
        path=record["path"],
        depth=record["depth"],
        start_s=record["start_s"],
        duration_s=record["duration_s"],
        index=record["index"],
        calls=record.get("calls", 1),
    )


def validate_span_record(record: Dict[str, object]) -> None:
    """Check one span record; raise :class:`TelemetryValidationError` on violation."""
    if record.get("kind") != "span":
        raise TelemetryValidationError(
            f"span record kind must be 'span', got {record.get('kind')!r}"
        )
    for field, expected in _SPAN_FIELDS.items():
        if field not in record or not isinstance(record[field], expected):
            raise TelemetryValidationError(
                f"span record is missing or mistypes {field!r}: {record!r}"
            )
    if record["duration_s"] < 0 or record["depth"] < 1 or record["index"] < 0:
        raise TelemetryValidationError(f"span record out of range: {record!r}")
    calls = record.get("calls", 1)
    if not isinstance(calls, int) or calls < 0:
        raise TelemetryValidationError(
            f"span record 'calls' must be an int >= 0: {record!r}"
        )


def write_jsonl(
    path: str, telemetry: "Telemetry | NullTelemetry", manifest: Dict[str, object]
) -> None:
    """Write one run's manifest plus its spans as JSONL at ``path``.

    The write is atomic (temp file + rename via
    :func:`repro.ioutils.atomic_write_lines`): a run killed mid-write never
    leaves a truncated, unvalidatable telemetry file behind — readers see
    either the previous complete file or the new one.
    """
    lines = [json.dumps(manifest, sort_keys=True)]
    lines.extend(
        json.dumps(span_record(span), sort_keys=True)
        for span in telemetry.iter_spans()
    )
    atomic_write_lines(path, lines)


def read_jsonl(path: str) -> Tuple[Dict[str, object], List[Span]]:
    """Read a telemetry JSONL file back as ``(manifest, spans)``.

    Validates as it reads — a malformed file raises
    :class:`TelemetryValidationError` naming the offending line.
    """
    manifest: Dict[str, object] = {}
    spans: List[Span] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TelemetryValidationError(
                    f"{path}:{line_no}: not valid JSON: {error}"
                ) from None
            try:
                if line_no == 1:
                    validate_manifest(record)
                    manifest = record
                else:
                    validate_span_record(record)
                    spans.append(_span_from_record(record))
            except TelemetryValidationError as error:
                raise TelemetryValidationError(
                    f"{path}:{line_no}: {error}"
                ) from None
    if not manifest:
        raise TelemetryValidationError(f"{path}: empty telemetry file")
    return manifest, spans


def validate_jsonl(path: str) -> Dict[str, object]:
    """Validate a telemetry JSONL file; return its manifest on success."""
    manifest, _ = read_jsonl(path)
    return manifest


def dump_run(
    path: str,
    telemetry: "Telemetry | NullTelemetry",
    name: str,
    spec_sha256=None,
    seed=None,
    extra=None,
) -> Dict[str, object]:
    """Build the manifest for a finished run and write the JSONL in one step."""
    manifest = build_manifest(
        telemetry, name=name, spec_sha256=spec_sha256, seed=seed, extra=extra
    )
    write_jsonl(path, telemetry, manifest)
    return manifest
