"""Battery models: capacity, charging, cycle wear, and replacement schedules.

Section 4.3 of the paper treats smartphone batteries both as an asset (they
provide a built-in UPS and enable carbon-aware *smart charging*) and as a
liability (they wear out after roughly 2,500 charge cycles and must be
replaced, which re-introduces embodied carbon).  This module captures both
sides:

* :class:`BatterySpec` holds the static parameters (capacity, charge rate,
  cycle life, embodied carbon of a replacement).
* :class:`BatteryState` tracks state-of-charge and accumulated cycle wear
  during a charging simulation.
* :func:`replacement_interval_days` / :func:`replacements_over_lifetime`
  reproduce the paper's battery-replacement arithmetic (e.g. a Pixel 3A on a
  light-medium workload cycles its 3 Ah battery ~3x/day and needs a new
  battery every ~2.3 years), including the ceiling in Equation (10).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro import units


@dataclass(frozen=True)
class BatterySpec:
    """Static battery parameters.

    Parameters
    ----------
    capacity_wh:
        Usable energy capacity in watt-hours.
    charge_rate_w:
        Maximum charging power in watts (wall-to-battery; charger losses are
        ignored, matching the paper's treatment).
    cycle_life:
        Number of full charge/discharge cycles before the battery is
        considered unusable (the paper uses 2,500).
    embodied_carbon_kgco2e:
        Embodied carbon of manufacturing one replacement battery.
    replacement_labor_minutes:
        Hands-on time to swap the battery (the paper measured ~10 minutes on
        a Nexus 4); used for the upkeep-labour estimates in Section 4.3.
    """

    capacity_wh: float
    charge_rate_w: float
    cycle_life: float = 2_500.0
    embodied_carbon_kgco2e: float = 0.0
    replacement_labor_minutes: float = 10.0

    def __post_init__(self) -> None:
        if self.capacity_wh <= 0:
            raise ValueError(f"battery capacity must be positive, got {self.capacity_wh}")
        if self.charge_rate_w <= 0:
            raise ValueError(f"charge rate must be positive, got {self.charge_rate_w}")
        if self.cycle_life <= 0:
            raise ValueError(f"cycle life must be positive, got {self.cycle_life}")
        if self.embodied_carbon_kgco2e < 0:
            raise ValueError("battery embodied carbon must be non-negative")

    @property
    def capacity_joules(self) -> float:
        """Usable capacity in joules."""
        return units.wh_to_joules(self.capacity_wh)

    @classmethod
    def from_amp_hours(
        cls,
        amp_hours: float,
        nominal_voltage_v: float,
        charge_rate_w: float,
        cycle_life: float = 2_500.0,
        embodied_carbon_kgco2e: float = 0.0,
        replacement_labor_minutes: float = 10.0,
    ) -> "BatterySpec":
        """Build a spec from an amp-hour rating and nominal voltage."""
        return cls(
            capacity_wh=units.ah_to_wh(amp_hours, nominal_voltage_v),
            charge_rate_w=charge_rate_w,
            cycle_life=cycle_life,
            embodied_carbon_kgco2e=embodied_carbon_kgco2e,
            replacement_labor_minutes=replacement_labor_minutes,
        )

    def full_charge_duration_s(self) -> float:
        """Time to charge from empty to full at the rated charge power."""
        return self.capacity_joules / self.charge_rate_w

    def runtime_s(self, draw_w: float, depth_of_discharge: float = 1.0) -> float:
        """How long the battery can sustain ``draw_w`` from the given charge depth.

        ``depth_of_discharge`` is the fraction of capacity available; e.g. the
        paper notes a 25 % charge on a Pixel 3A lasts "slightly under 2 hours"
        on a light-medium workload (~1.54 W).
        """
        if draw_w <= 0:
            raise ValueError("draw must be positive")
        if not 0.0 <= depth_of_discharge <= 1.0:
            raise ValueError("depth of discharge must be within [0, 1]")
        return self.capacity_joules * depth_of_discharge / draw_w

    def daily_cycles(self, average_draw_w: float) -> float:
        """Equivalent full cycles per day when the device draws ``average_draw_w``.

        The paper computes this as daily energy consumption divided by battery
        capacity (a Pixel 3A at 1.54 W consumes 133 kJ/day against a 45 kJ
        battery: three full daily charges).
        """
        if average_draw_w < 0:
            raise ValueError("average draw must be non-negative")
        daily_energy_j = average_draw_w * units.SECONDS_PER_DAY
        return daily_energy_j / self.capacity_joules


def replacement_interval_days(spec: BatterySpec, average_draw_w: float) -> float:
    """Days until the battery reaches its cycle life at the given average draw.

    Returns ``math.inf`` when the device draws no power (the battery never
    cycles).
    """
    cycles_per_day = spec.daily_cycles(average_draw_w)
    if cycles_per_day == 0:
        return math.inf
    return spec.cycle_life / cycles_per_day


def replacements_over_lifetime(
    spec: BatterySpec, average_draw_w: float, lifetime_months: float
) -> int:
    """Number of battery packs consumed over ``lifetime_months`` (paper Eq. 10).

    The paper takes the ceiling of lifetime over battery lifetime; the battery
    that ships with a reused phone is counted as free (its carbon was paid in
    the first life), so the count here is the number of *packs needed in
    total*, of which the first is free — callers multiply
    ``max(0, count - 1)`` by the replacement embodied carbon when they want
    only the replacements, or use :func:`replacement_carbon_kg` which applies
    the paper's convention of charging every pack after the lifetime exceeds
    one battery lifetime.
    """
    if lifetime_months < 0:
        raise ValueError("lifetime must be non-negative")
    if lifetime_months == 0:
        return 0
    interval_days = replacement_interval_days(spec, average_draw_w)
    if math.isinf(interval_days):
        return 1
    lifetime_days = lifetime_months * units.DAYS_PER_MONTH
    return int(math.ceil(lifetime_days / interval_days))


def replacement_carbon_kg(
    spec: BatterySpec, average_draw_w: float, lifetime_months: float
) -> float:
    """Embodied carbon (kg CO2e) of battery packs per paper Equation (10).

    Equation (10) charges ``C_M(battery) * ceil(lifetime / battery_lifetime)``
    — i.e. it conservatively counts the pack in use during the final partial
    interval as well.  We reproduce that convention exactly so the Figure 5
    cluster curves match the paper's shape.
    """
    packs = replacements_over_lifetime(spec, average_draw_w, lifetime_months)
    return packs * spec.embodied_carbon_kgco2e


@dataclass
class BatteryState:
    """Mutable battery state used by the charging simulator.

    Tracks state-of-charge in joules and cumulative energy throughput, from
    which equivalent full cycles (and therefore wear) are derived.
    """

    spec: BatterySpec
    state_of_charge_j: float = field(default=0.0)
    discharged_energy_j: float = field(default=0.0)
    charged_energy_j: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.state_of_charge_j == 0.0:
            self.state_of_charge_j = self.spec.capacity_joules

    @property
    def state_of_charge(self) -> float:
        """State of charge as a fraction of capacity in ``[0, 1]``."""
        return self.state_of_charge_j / self.spec.capacity_joules

    @property
    def equivalent_full_cycles(self) -> float:
        """Cumulative equivalent full cycles (discharge throughput / capacity)."""
        return self.discharged_energy_j / self.spec.capacity_joules

    @property
    def is_worn_out(self) -> bool:
        """True once the battery has exceeded its rated cycle life."""
        return self.equivalent_full_cycles >= self.spec.cycle_life

    def discharge(self, draw_w: float, duration_s: float) -> float:
        """Discharge at ``draw_w`` for ``duration_s``.

        Returns the energy (J) actually supplied by the battery, which may be
        less than requested if the battery runs empty.
        """
        if draw_w < 0 or duration_s < 0:
            raise ValueError("draw and duration must be non-negative")
        requested = draw_w * duration_s
        supplied = min(requested, self.state_of_charge_j)
        self.state_of_charge_j -= supplied
        self.discharged_energy_j += supplied
        return supplied

    def charge(self, duration_s: float, rate_w: float = None) -> float:
        """Charge for ``duration_s`` at ``rate_w`` (defaults to the rated rate).

        Returns the wall energy (J) drawn; charging stops at full capacity.
        """
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        rate = self.spec.charge_rate_w if rate_w is None else rate_w
        if rate < 0:
            raise ValueError("charge rate must be non-negative")
        headroom = self.spec.capacity_joules - self.state_of_charge_j
        delivered = min(rate * duration_s, headroom)
        self.state_of_charge_j += delivered
        self.charged_energy_j += delivered
        return delivered

    def reset(self, state_of_charge: float = 1.0) -> None:
        """Reset SoC to the given fraction and clear throughput counters."""
        if not 0.0 <= state_of_charge <= 1.0:
            raise ValueError("state of charge must be within [0, 1]")
        self.state_of_charge_j = state_of_charge * self.spec.capacity_joules
        self.discharged_energy_j = 0.0
        self.charged_energy_j = 0.0
