"""Figure 4 — smart charging against a synthetic CAISO April."""

from conftest import full_fidelity

from repro.analysis.figures import fig4_smart_charging
from repro.analysis.report import format_table


def test_fig4_smart_charging(benchmark, report):
    n_days = 30 if full_fidelity() else 14

    data = benchmark.pedantic(
        fig4_smart_charging, kwargs={"n_days": n_days}, rounds=1, iterations=1
    )
    rows = []
    for name, study in data.studies.items():
        rows.append(
            [
                name,
                f"{100 * study.median_savings:.2f}%",
                f"{100 * study.savings_std:.2f}%",
                f"{100 * study.overall_savings:.2f}%",
            ]
        )
    body = format_table(["Device", "Median savings", "Std", "Overall"], rows)
    body += f"\nGrid trace: {data.trace.n_days} days, mean {data.trace.mean_intensity():.0f} gCO2e/kWh"
    report("Figure 4: smart-charging savings", body)

    pixel = data.median_savings("Pixel 3A")
    laptop = data.median_savings("ThinkPad X1 Carbon G3")
    # Paper: Pixel 3A median 7.22% (sigma 5.93%), ThinkPad 4.03% (sigma 2.2%),
    # with the phone saving more than the laptop.
    assert 0.03 < pixel < 0.25
    assert 0.01 < laptop < 0.12
    assert pixel > laptop
