"""Fleet-level carbon, availability, and churn reporting.

A :class:`FleetReport` is the single artifact a fleet simulation produces:
hourly served/dropped/operational-carbon/intensity series per site plus
daily population series (active devices, failures, swaps, replacement
carbon).  From it every downstream consumer derives what it needs:

* the fleet CCI (grams of CO2e per served request, the paper's Equation 1
  applied to the whole fleet over the whole horizon);
* availability (delivered capacity against the target deployment);
* per-site and fleet-wide summary tables for the text reports in
  :mod:`repro.analysis.report`;
* daily CCI / carbon time series for figure builders in
  :mod:`repro.analysis.figures`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.cci import computational_carbon_intensity


@dataclass(frozen=True)
class SiteSummary:
    """Aggregates for one site over the simulated horizon."""

    name: str
    served_requests: float
    operational_carbon_g: float
    replacement_carbon_g: float
    mean_intensity_g_per_kwh: float
    availability: float
    failures: int
    battery_swaps: int
    deployed: int

    @property
    def total_carbon_g(self) -> float:
        """Operational plus replacement carbon for this site."""
        return self.operational_carbon_g + self.replacement_carbon_g

    @property
    def cci_g_per_request(self) -> float:
        """Site-level CCI (g CO2e per served request)."""
        return computational_carbon_intensity(
            self.total_carbon_g, max(self.served_requests, 1.0)
        )


@dataclass(frozen=True)
class FleetReport:
    """Everything a fleet simulation measured.

    Hourly arrays have shape ``(T, S)`` for ``T`` timesteps and ``S`` sites;
    daily arrays have shape ``(D, S)``.  ``step_s`` is the scheduling
    timestep in seconds (series of requests/s integrate to requests by
    multiplying with it).
    """

    policy_name: str
    site_names: Tuple[str, ...]
    hours: np.ndarray
    served_rps: np.ndarray
    dropped_rps: np.ndarray
    operational_g: np.ndarray
    intensity_g_per_kwh: np.ndarray
    days: np.ndarray
    active_devices: np.ndarray
    target_devices: np.ndarray
    replacement_carbon_g: np.ndarray
    battery_swaps: np.ndarray
    failures: np.ndarray
    deployed: np.ndarray
    step_s: float = 3_600.0
    #: Realised site energy per timestep (kWh), shape ``(T, S)``.  Optional
    #: for backward compatibility with reports built before it was tracked;
    #: the fleet simulation always fills it.
    energy_kwh: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        n_sites = len(self.site_names)
        for name in ("served_rps", "operational_g", "intensity_g_per_kwh"):
            array = getattr(self, name)
            if array.shape != (len(self.hours), n_sites):
                raise ValueError(
                    f"{name} has shape {array.shape}, expected "
                    f"({len(self.hours)}, {n_sites})"
                )
        if self.energy_kwh is not None and self.energy_kwh.shape != (
            len(self.hours),
            n_sites,
        ):
            raise ValueError(
                f"energy_kwh has shape {self.energy_kwh.shape}, expected "
                f"({len(self.hours)}, {n_sites})"
            )
        if self.dropped_rps.shape != (len(self.hours),):
            raise ValueError(
                f"dropped_rps has shape {self.dropped_rps.shape}, expected "
                f"({len(self.hours)},)"
            )
        for name in (
            "active_devices",
            "replacement_carbon_g",
            "battery_swaps",
            "failures",
            "deployed",
        ):
            array = getattr(self, name)
            if array.shape != (len(self.days), n_sites):
                raise ValueError(
                    f"{name} has shape {array.shape}, expected "
                    f"({len(self.days)}, {n_sites})"
                )

    # ------------------------------------------------------------------
    # Fleet-level aggregates
    # ------------------------------------------------------------------

    @property
    def total_served_requests(self) -> float:
        """Requests served across all sites over the horizon."""
        return float(self.served_rps.sum() * self.step_s)

    @property
    def total_dropped_requests(self) -> float:
        """Demand the fleet could not serve (requests)."""
        return float(self.dropped_rps.sum() * self.step_s)

    @property
    def total_operational_carbon_g(self) -> float:
        """Operational carbon across all sites (grams)."""
        return float(self.operational_g.sum())

    @property
    def total_replacement_carbon_g(self) -> float:
        """Battery-replacement embodied carbon across all sites (grams)."""
        return float(self.replacement_carbon_g.sum())

    @property
    def total_carbon_g(self) -> float:
        """Operational + replacement carbon (grams)."""
        return self.total_operational_carbon_g + self.total_replacement_carbon_g

    def fleet_cci_g_per_request(self) -> float:
        """Fleet CCI: total carbon over total served requests (Equation 1)."""
        return computational_carbon_intensity(
            self.total_carbon_g, max(self.total_served_requests, 1.0)
        )

    def served_fraction(self) -> float:
        """Fraction of offered demand that was served."""
        offered = self.total_served_requests + self.total_dropped_requests
        if offered == 0:
            return 1.0
        return self.total_served_requests / offered

    def availability(self) -> float:
        """Mean fraction of the target deployment that was live."""
        target_total = float(self.target_devices.sum())
        if target_total == 0:
            return 0.0
        return float(np.mean(self.active_devices.sum(axis=1) / target_total))

    # ------------------------------------------------------------------
    # Time series for figures
    # ------------------------------------------------------------------

    def daily_carbon_g(self) -> np.ndarray:
        """Total carbon per day (operational + replacement), shape ``(D,)``."""
        steps_per_day = len(self.hours) // len(self.days)
        operational = self.operational_g.sum(axis=1).reshape(
            len(self.days), steps_per_day
        ).sum(axis=1)
        return operational + self.replacement_carbon_g.sum(axis=1)

    def daily_cci_series(self) -> np.ndarray:
        """Running (cumulative) fleet CCI at the end of each day."""
        steps_per_day = len(self.hours) // len(self.days)
        daily_served = (
            self.served_rps.sum(axis=1).reshape(len(self.days), steps_per_day).sum(axis=1)
            * self.step_s
        )
        cumulative_carbon = np.cumsum(self.daily_carbon_g())
        cumulative_served = np.maximum(np.cumsum(daily_served), 1.0)
        return cumulative_carbon / cumulative_served

    def availability_series(self) -> np.ndarray:
        """Daily fleet availability (active / target), shape ``(D,)``."""
        return self.active_devices.sum(axis=1) / float(self.target_devices.sum())

    # ------------------------------------------------------------------
    # Per-site summaries
    # ------------------------------------------------------------------

    def site_summaries(self) -> List[SiteSummary]:
        """Per-site aggregate rows, in site order."""
        summaries = []
        for j, name in enumerate(self.site_names):
            target = float(self.target_devices[j])
            summaries.append(
                SiteSummary(
                    name=name,
                    served_requests=float(self.served_rps[:, j].sum() * self.step_s),
                    operational_carbon_g=float(self.operational_g[:, j].sum()),
                    replacement_carbon_g=float(self.replacement_carbon_g[:, j].sum()),
                    mean_intensity_g_per_kwh=float(
                        np.mean(self.intensity_g_per_kwh[:, j])
                    ),
                    availability=float(np.mean(self.active_devices[:, j] / target)),
                    failures=int(self.failures[:, j].sum()),
                    battery_swaps=int(self.battery_swaps[:, j].sum()),
                    deployed=int(self.deployed[:, j].sum()),
                )
            )
        return summaries

    def summary_dict(self) -> Dict[str, float]:
        """Headline numbers, convenient for asserts and JSON dumps."""
        return {
            "policy": self.policy_name,
            "served_requests": self.total_served_requests,
            "dropped_requests": self.total_dropped_requests,
            "operational_carbon_kg": self.total_operational_carbon_g / 1_000.0,
            "replacement_carbon_kg": self.total_replacement_carbon_g / 1_000.0,
            "fleet_cci_g_per_request": self.fleet_cci_g_per_request(),
            "availability": self.availability(),
            "served_fraction": self.served_fraction(),
        }


def compare_reports(reports: Dict[str, "FleetReport"]) -> List[Tuple[str, float, float]]:
    """Rank policies by fleet CCI: ``(policy, cci, operational_kg)`` ascending."""
    rows = [
        (
            name,
            report.fleet_cci_g_per_request(),
            report.total_operational_carbon_g / 1_000.0,
        )
        for name, report in reports.items()
    ]
    rows.sort(key=lambda row: row[1])
    return rows
