"""Cloudlet-scale cooling provisioning (Section 4.1, "Scaling Further").

The paper sizes cooling for phone cloudlets from the measured per-phone
thermal power: 256 Nexus 4s at 100 % load dissipate roughly 666 W, which fits
within two commodity 500 W-rated server fans, each adding ~4 W of draw and
~9.3 kgCO2e of embodied carbon.  These helpers reproduce that arithmetic and
are consumed by :mod:`repro.cluster.cloudlet` when it attaches peripherals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.devices.power import FULL_LOAD, LIGHT_MEDIUM, LoadProfile
from repro.devices.specs import DeviceSpec

#: Rated heat-removal capacity of one commodity server fan (W).
FAN_RATED_W = 500.0
#: Electrical draw of one fan (W).
FAN_POWER_W = 4.0
#: Embodied carbon of one fan, estimated from its weight and a world energy
#: mix during production (paper Section 4.1).
FAN_EMBODIED_KG = 9.3


@dataclass(frozen=True)
class CoolingPlan:
    """How many fans a cloudlet needs and what they cost."""

    thermal_power_w: float
    fans: int
    fan_power_w: float
    fan_embodied_kg: float

    @property
    def total_fan_power_w(self) -> float:
        """Aggregate electrical draw of all fans."""
        return self.fans * self.fan_power_w

    @property
    def total_fan_embodied_kg(self) -> float:
        """Aggregate embodied carbon of all fans."""
        return self.fans * self.fan_embodied_kg


def device_thermal_power_w(
    device: DeviceSpec, load_profile: LoadProfile = FULL_LOAD
) -> float:
    """Thermal power of one device: electrical power at the profile's utilisation.

    In steady state every electrical watt becomes heat, so the worst-case
    thermal design load of a cloudlet is the sum of its devices' power draws
    at the provisioning load profile.
    """
    return device.power_model.power_at(load_profile.average_utilization())


def fans_needed(thermal_power_w: float, fan_rated_w: float = FAN_RATED_W) -> int:
    """Number of fans required to remove ``thermal_power_w`` (at least one)."""
    if thermal_power_w < 0:
        raise ValueError("thermal power must be non-negative")
    if fan_rated_w <= 0:
        raise ValueError("fan rating must be positive")
    return max(1, int(math.ceil(thermal_power_w / fan_rated_w)))


def plan_cooling(
    device: DeviceSpec,
    n_devices: int,
    load_profile: LoadProfile = FULL_LOAD,
    fan_rated_w: float = FAN_RATED_W,
    fan_power_w: float = FAN_POWER_W,
    fan_embodied_kg: float = FAN_EMBODIED_KG,
) -> CoolingPlan:
    """Size the fan complement for ``n_devices`` of ``device`` at a given load."""
    if n_devices <= 0:
        raise ValueError("device count must be positive")
    thermal = n_devices * device_thermal_power_w(device, load_profile)
    fans = fans_needed(thermal, fan_rated_w)
    return CoolingPlan(
        thermal_power_w=thermal,
        fans=fans,
        fan_power_w=fan_power_w,
        fan_embodied_kg=fan_embodied_kg,
    )


def plan_cooling_light_medium(device: DeviceSpec, n_devices: int) -> CoolingPlan:
    """Cooling plan for the light-medium operating regime."""
    return plan_cooling(device, n_devices, load_profile=LIGHT_MEDIUM)
