"""Carbon accounting primitives: embodied, operational, and networking carbon.

These functions and the :class:`CarbonLedger` accumulator implement the three
numerator terms of the paper's CCI definition (Equation 2):

* **C_M** — embodied (manufacturing) carbon, a one-off cost charged at the
  start of a device's (second) life.  For reused devices the paper's
  convention sets the original device's C_M to zero, but replacement
  batteries and added peripherals still contribute (Equations 10 and 12).
* **C_C** — operational ("compute") carbon: energy drawn from the wall times
  the grid's carbon intensity (Equations 3, 4, 11, 13).
* **C_N** — networking carbon: data moved times the energy intensity of the
  network technology times the grid's carbon intensity (Equation 5).

All quantities are tracked in grams of CO2e.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro import units

#: Energy intensity of WiFi data transfer (J per byte), from the paper's
#: Section 5.2 (5 microjoules per byte).
WIFI_ENERGY_INTENSITY_J_PER_BYTE = 5e-6
#: Energy intensity of LTE data transfer (J per byte) — 11 microjoules/byte.
LTE_ENERGY_INTENSITY_J_PER_BYTE = 11e-6
#: Energy intensity of wired Ethernet, roughly an order of magnitude below
#: WiFi; used for the wired baselines (the paper treats their networking as
#: part of existing infrastructure).
WIRED_ENERGY_INTENSITY_J_PER_BYTE = 0.5e-6


def operational_carbon_g(
    average_power_w: float,
    duration_s: float,
    intensity_g_per_kwh: float,
) -> float:
    """Operational carbon (g CO2e) of drawing ``average_power_w`` for ``duration_s``.

    Implements C_C = CI_grid * E (Equation 3) with the energy term expressed
    through an average power and a duration.
    """
    if average_power_w < 0:
        raise ValueError("average power must be non-negative")
    if duration_s < 0:
        raise ValueError("duration must be non-negative")
    if intensity_g_per_kwh < 0:
        raise ValueError("carbon intensity must be non-negative")
    energy_kwh = units.joules_to_kwh(average_power_w * duration_s)
    return energy_kwh * intensity_g_per_kwh


def networking_carbon_g(
    data_rate_bytes_per_s: float,
    energy_intensity_j_per_byte: float,
    duration_s: float,
    intensity_g_per_kwh: float,
) -> float:
    """Networking carbon (g CO2e) per the paper's Equation 5.

    ``data_rate_bytes_per_s`` is the sustained rate at which data is sent and
    received (f_net) and ``energy_intensity_j_per_byte`` the energy intensity
    of the network technology (EI_net).
    """
    if data_rate_bytes_per_s < 0:
        raise ValueError("data rate must be non-negative")
    if energy_intensity_j_per_byte < 0:
        raise ValueError("energy intensity must be non-negative")
    if duration_s < 0:
        raise ValueError("duration must be non-negative")
    if intensity_g_per_kwh < 0:
        raise ValueError("carbon intensity must be non-negative")
    energy_j = data_rate_bytes_per_s * energy_intensity_j_per_byte * duration_s
    return units.joules_to_kwh(energy_j) * intensity_g_per_kwh


@dataclass(frozen=True)
class CarbonComponents:
    """The three CCI numerator terms, in grams of CO2e."""

    embodied_g: float = 0.0
    operational_g: float = 0.0
    networking_g: float = 0.0

    def __post_init__(self) -> None:
        for name, value in (
            ("embodied", self.embodied_g),
            ("operational", self.operational_g),
            ("networking", self.networking_g),
        ):
            if value < 0:
                raise ValueError(f"{name} carbon must be non-negative, got {value}")

    @property
    def total_g(self) -> float:
        """Total carbon in grams."""
        return self.embodied_g + self.operational_g + self.networking_g

    @property
    def total_kg(self) -> float:
        """Total carbon in kilograms."""
        return units.grams_to_kg(self.total_g)

    def __add__(self, other: "CarbonComponents") -> "CarbonComponents":
        return CarbonComponents(
            embodied_g=self.embodied_g + other.embodied_g,
            operational_g=self.operational_g + other.operational_g,
            networking_g=self.networking_g + other.networking_g,
        )

    def scaled(self, factor: float) -> "CarbonComponents":
        """Scale every component by ``factor`` (e.g. a device count or a PUE)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return CarbonComponents(
            embodied_g=self.embodied_g * factor,
            operational_g=self.operational_g * factor,
            networking_g=self.networking_g * factor,
        )

    def with_pue(self, pue: float) -> "CarbonComponents":
        """Apply a datacenter PUE to the *operational* terms only (Equation 15).

        PUE inflates the energy drawn from the grid (cooling and lighting)
        but does not change embodied carbon.
        """
        if pue < 1.0:
            raise ValueError(f"PUE must be >= 1.0, got {pue}")
        return CarbonComponents(
            embodied_g=self.embodied_g,
            operational_g=self.operational_g * pue,
            networking_g=self.networking_g * pue,
        )


@dataclass
class CarbonLedger:
    """A labelled accumulator of carbon contributions.

    The ledger keeps every contribution as a ``(label, kind, grams)`` entry so
    reports can show where the carbon of a cloudlet design comes from
    (devices, battery replacements, fans, smart plugs, networking, ...).
    """

    entries: List[Tuple[str, str, float]] = field(default_factory=list)

    def add_embodied(self, label: str, kg_co2e: float, count: float = 1.0) -> None:
        """Add an embodied-carbon contribution of ``count`` items at ``kg_co2e`` each."""
        if kg_co2e < 0 or count < 0:
            raise ValueError("embodied carbon and count must be non-negative")
        self.entries.append((label, "embodied", units.kg_to_grams(kg_co2e * count)))

    def add_operational(
        self,
        label: str,
        average_power_w: float,
        duration_s: float,
        intensity_g_per_kwh: float,
    ) -> None:
        """Add operational carbon for a constant average power draw."""
        grams = operational_carbon_g(average_power_w, duration_s, intensity_g_per_kwh)
        self.entries.append((label, "operational", grams))

    def add_operational_grams(self, label: str, grams: float) -> None:
        """Add pre-computed operational carbon (e.g. from a trace integration)."""
        if grams < 0:
            raise ValueError("operational carbon must be non-negative")
        self.entries.append((label, "operational", grams))

    def add_networking(
        self,
        label: str,
        data_rate_bytes_per_s: float,
        energy_intensity_j_per_byte: float,
        duration_s: float,
        intensity_g_per_kwh: float,
    ) -> None:
        """Add networking carbon per Equation 5."""
        grams = networking_carbon_g(
            data_rate_bytes_per_s,
            energy_intensity_j_per_byte,
            duration_s,
            intensity_g_per_kwh,
        )
        self.entries.append((label, "networking", grams))

    def components(self) -> CarbonComponents:
        """Collapse the ledger into :class:`CarbonComponents`."""
        embodied = sum(g for _, kind, g in self.entries if kind == "embodied")
        operational = sum(g for _, kind, g in self.entries if kind == "operational")
        networking = sum(g for _, kind, g in self.entries if kind == "networking")
        return CarbonComponents(
            embodied_g=embodied, operational_g=operational, networking_g=networking
        )

    def total_g(self) -> float:
        """Total carbon across all entries, in grams."""
        return self.components().total_g

    def by_label(self) -> Dict[str, float]:
        """Total grams per label, for breakdown reporting."""
        totals: Dict[str, float] = {}
        for label, _, grams in self.entries:
            totals[label] = totals.get(label, 0.0) + grams
        return totals

    def merged(self, other: "CarbonLedger") -> "CarbonLedger":
        """Return a new ledger containing the entries of both ledgers."""
        return CarbonLedger(entries=list(self.entries) + list(other.entries))
