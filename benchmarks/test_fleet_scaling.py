"""Fleet scaling — 10,000 devices over one simulated year.

The acceptance bar for the fleet subsystem: a fleet of >= 10,000 reused
phones across geo-distributed sites simulates >= 1 year of virtual time
(hourly scheduling, daily churn) deterministically and inside a strict
wall-clock budget, and the carbon-aware policies strictly beat round-robin
on operational carbon in the asymmetric two-site scenario.

Timed cases run with telemetry spans *enabled*, so the wall-clock budget
doubles as the instrumentation-overhead bar, and each labelled case's
wall clock + per-phase breakdown lands in ``BENCH_fleet_scaling.json`` at
the repo root for cross-PR trajectory tracking.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.fleet import (
    CapacityAwareMarginalCciRouting,
    CarbonBufferDispatch,
    DiurnalDemand,
    FleetSimulation,
    GreedyLowestIntensityRouting,
    RoundRobinRouting,
    two_site_asymmetric_fleet,
)
from repro.fleet.sites import DEFAULT_REQUESTS_PER_DEVICE_S
from repro.telemetry import Telemetry

#: 2 sites x 5,000 devices = 10,000-device fleet.
DEVICES_PER_SITE = 5_000
N_DAYS = 366
#: Wall-clock budget (seconds) for one full-year, 10k-device simulation.
WALL_CLOCK_BUDGET_S = 60.0

#: 2 sites x 500,000 devices = the million-device scale-out target, run for
#: two simulated years with the batched + sharded execution path.  Churn is
#: the per-device floor (~1 uniform draw per device-day), so the budget is
#: sized off that: ~36 s measured on a dev box, 120 s leaves >3x headroom
#: for slower CI runners.
MILLION_DEVICES_PER_SITE = 500_000
MILLION_N_DAYS = 732
MILLION_WALL_CLOCK_BUDGET_S = 120.0

#: The bucketed churn engine must beat the committed per-device wall clock
#: by >= 3x on the same 1M x 2-year case (PR 8 recorded ~33 s), so its
#: budget is a third of the device-sampler budget.
MILLION_BUCKET_BUDGET_S = MILLION_WALL_CLOCK_BUDGET_S / 3.0

#: 2 sites x 5,000,000 devices = the 10M-device case.  Only reachable with
#: the bucketed engine (per-device churn alone would blow the budget); one
#: simulated year inside the same 120 s envelope as the 1M device case.
TEN_MILLION_DEVICES_PER_SITE = 5_000_000
TEN_MILLION_N_DAYS = 366
TEN_MILLION_WALL_CLOCK_BUDGET_S = 120.0

DEMAND = DiurnalDemand(
    mean_rps=0.9 * DEVICES_PER_SITE * DEFAULT_REQUESTS_PER_DEVICE_S
)

BENCH_JSON = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_fleet_scaling.json",
)

#: Labelled-case records accumulated by ``_run`` and flushed at module exit.
_CASES = []


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    """Flush every labelled case to ``BENCH_fleet_scaling.json`` on teardown."""
    yield
    if not _CASES:
        return
    payload = {
        "benchmark": "fleet_scaling",
        "devices": 2 * DEVICES_PER_SITE,
        "n_days": N_DAYS,
        "wall_clock_budget_s": WALL_CLOCK_BUDGET_S,
        "cases": _CASES,
    }
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _run(
    policy,
    seed: int = 42,
    dispatch=None,
    case=None,
    devices_per_site: int = DEVICES_PER_SITE,
    n_days: int = N_DAYS,
    demand=None,
    block_days: int = 1,
    shards: int = 1,
    churn_sampler: str = "device",
):
    """Run one labelled fleet case; a ``case`` label records it for the JSON."""
    telemetry = Telemetry() if case else None
    start = time.perf_counter()
    simulation = FleetSimulation(
        two_site_asymmetric_fleet(
            devices_per_site, seed=seed, sampler=churn_sampler
        ),
        policy,
        demand if demand is not None else DEMAND,
        dispatch=dispatch,
        telemetry=telemetry,
        block_days=block_days,
        shards=shards,
    )
    result = simulation.run(n_days)
    elapsed = time.perf_counter() - start
    if case:
        devices = 2 * devices_per_site
        _CASES.append(
            {
                "case": case,
                "devices": devices,
                "n_days": n_days,
                "block_days": block_days,
                "shards": shards,
                "churn_sampler": churn_sampler,
                "wall_s": round(elapsed, 4),
                "device_days_per_s": round(devices * n_days / elapsed, 1),
                "phases": [
                    {"path": path, "calls": calls, "total_s": round(total, 4)}
                    for path, (calls, total) in sorted(
                        telemetry.phase_totals().items()
                    )
                ],
                "counters": dict(telemetry.counters),
            }
        )
    return result, elapsed


def test_fleet_year_within_wall_clock_budget(report):
    result, elapsed = _run(GreedyLowestIntensityRouting(), case="greedy-year")

    report(
        "Fleet scaling (10k devices, 1 year, greedy policy)",
        "\n".join(
            f"{key}: {value}" for key, value in result.summary_dict().items()
        )
        + f"\nwall clock: {elapsed:.2f} s",
    )
    assert result.active_devices.shape == (N_DAYS, 2)
    assert result.total_served_requests > 0
    # A year of churn on 10k devices must see real lifecycle activity: the
    # paper's ~2.3-year battery life means only a sliver wears out in year
    # one, but age-dependent hardware failures churn steadily.
    assert result.failures.sum() > 100
    assert 0.9 <= result.availability() <= 1.0
    assert elapsed < WALL_CLOCK_BUDGET_S


def test_fleet_year_with_dispatch_within_wall_clock_budget(report):
    """The battery ledger stays inside the same budget as the plain loop."""
    result, elapsed = _run(
        GreedyLowestIntensityRouting(),
        dispatch=CarbonBufferDispatch(),
        case="greedy-year-dispatch",
    )

    baseline, _ = _run(GreedyLowestIntensityRouting())
    avoided = result.carbon_avoided_g()
    report(
        "Fleet scaling with energy dispatch (10k devices, 1 year)",
        f"battery served {result.total_battery_discharge_kwh:.1f} kWh, "
        f"charged {result.total_charge_kwh:.1f} kWh, "
        f"avoided {avoided / 1e3:.2f} kg operational carbon"
        f"\nwall clock: {elapsed:.2f} s",
    )
    assert elapsed < WALL_CLOCK_BUDGET_S
    # The coupled ledger must pay off, never cost, operational carbon.
    assert avoided > 0
    assert (
        result.total_operational_carbon_g <= baseline.total_operational_carbon_g
    )
    # SoC bounds hold at scale.
    assert float(result.soc.min()) >= 0.25 - 1e-9
    assert float(result.soc.max()) <= 1.0 + 1e-9


def test_fleet_year_is_deterministic(report):
    first, _ = _run(CapacityAwareMarginalCciRouting(), seed=7, case="marginal-year")
    second, _ = _run(CapacityAwareMarginalCciRouting(), seed=7)

    assert first.fleet_cci_g_per_request() == second.fleet_cci_g_per_request()
    assert np.array_equal(first.served_rps, second.served_rps)
    assert np.array_equal(first.active_devices, second.active_devices)
    assert np.array_equal(first.replacement_carbon_g, second.replacement_carbon_g)

    different_seed, _ = _run(CapacityAwareMarginalCciRouting(), seed=8)
    assert not np.array_equal(
        different_seed.failures, first.failures
    ), "different seeds should produce different churn trajectories"

    report(
        "Fleet determinism",
        f"seed 7 fleet CCI: {first.fleet_cci_g_per_request():.6e} (bit-identical reruns)",
    )


def test_million_devices_two_years_within_wall_clock_budget(report):
    """The scale-out target: 1M devices x 2 years with the batched path.

    Runs the full coupled stack (carbon-buffer dispatch on every pack) with
    whole-run day batching and site-sharded dispatch — the configuration the
    vectorized execution work exists for.  Identity of this configuration
    with the serial reference is locked separately by
    ``tests/fleet/test_execution_identity.py``; this case pins the speed.
    """
    demand = DiurnalDemand(
        mean_rps=0.9 * MILLION_DEVICES_PER_SITE * DEFAULT_REQUESTS_PER_DEVICE_S
    )
    result, elapsed = _run(
        GreedyLowestIntensityRouting(),
        dispatch=CarbonBufferDispatch(),
        case="million-two-years-dispatch",
        devices_per_site=MILLION_DEVICES_PER_SITE,
        n_days=MILLION_N_DAYS,
        demand=demand,
        block_days=366,
        shards=2,
    )

    devices = 2 * MILLION_DEVICES_PER_SITE
    throughput = devices * MILLION_N_DAYS / elapsed
    report(
        "Fleet scaling (1M devices, 2 years, batched + sharded dispatch)",
        f"wall clock: {elapsed:.2f} s "
        f"({throughput / 1e6:.1f}M device-days/s)\n"
        f"battery served {result.total_battery_discharge_kwh:.1f} kWh, "
        f"avoided {result.carbon_avoided_g() / 1e6:.1f} t operational carbon",
    )
    assert result.active_devices.shape == (MILLION_N_DAYS, 2)
    assert elapsed < MILLION_WALL_CLOCK_BUDGET_S
    # Two years of churn on a million devices: substantial lifecycle
    # activity (the paper's ~2.3-year battery life bites in year two).
    assert result.failures.sum() > 10_000
    # The coupled ledger still pays off at scale, and SoC bounds hold.
    assert result.carbon_avoided_g() > 0
    assert float(result.soc.min()) >= 0.25 - 1e-9
    assert float(result.soc.max()) <= 1.0 + 1e-9


def test_million_devices_bucket_churn_within_third_of_budget(report):
    """The bucketed churn engine on the same 1M x 2-year configuration.

    ``churn.sampler=bucket`` collapses per-device churn state into
    deploy-day buckets (one binomial per bucket-day), so the same coupled
    stack must land >= 3x under the device-sampler budget and churn must
    stop dominating the wall clock (<50% of it).  Distributional
    equivalence with the device engine is locked separately by
    ``tests/fleet/test_churn.py``; this case pins the speed.
    """
    demand = DiurnalDemand(
        mean_rps=0.9 * MILLION_DEVICES_PER_SITE * DEFAULT_REQUESTS_PER_DEVICE_S
    )
    result, elapsed = _run(
        GreedyLowestIntensityRouting(),
        dispatch=CarbonBufferDispatch(),
        case="million-two-years-bucket",
        devices_per_site=MILLION_DEVICES_PER_SITE,
        n_days=MILLION_N_DAYS,
        demand=demand,
        block_days=366,
        shards=2,
        churn_sampler="bucket",
    )

    devices = 2 * MILLION_DEVICES_PER_SITE
    throughput = devices * MILLION_N_DAYS / elapsed
    churn_s = sum(
        phase["total_s"]
        for phase in _CASES[-1]["phases"]
        if phase["path"].endswith("step_population")
    )
    report(
        "Fleet scaling (1M devices, 2 years, bucketed churn)",
        f"wall clock: {elapsed:.2f} s "
        f"({throughput / 1e6:.1f}M device-days/s), "
        f"churn {churn_s:.2f} s ({churn_s / elapsed:.0%} of wall)\n"
        f"battery served {result.total_battery_discharge_kwh:.1f} kWh, "
        f"avoided {result.carbon_avoided_g() / 1e6:.1f} t operational carbon",
    )
    assert result.active_devices.shape == (MILLION_N_DAYS, 2)
    assert elapsed < MILLION_BUCKET_BUDGET_S
    # Churn no longer dominates: the bucketed engine's O(buckets) step
    # must be a minority share of the wall clock.
    assert churn_s < 0.5 * elapsed
    # Same lifecycle physics as the device-sampler case (different RNG
    # stream, same distribution): real churn and a real dispatch win.
    assert result.failures.sum() > 10_000
    assert result.carbon_avoided_g() > 0
    assert float(result.soc.min()) >= 0.25 - 1e-9
    assert float(result.soc.max()) <= 1.0 + 1e-9


def test_ten_million_devices_year_with_bucket_churn(report):
    """10M devices x 1 year — only reachable with the bucketed engine.

    Bucket count scales with simulated days, not devices, so a 10x bigger
    fleet costs roughly the same churn time as the 1M case; the remaining
    wall clock is the (vectorized, device-count-independent-per-day)
    allocation and dispatch replay.
    """
    demand = DiurnalDemand(
        mean_rps=0.9
        * TEN_MILLION_DEVICES_PER_SITE
        * DEFAULT_REQUESTS_PER_DEVICE_S
    )
    result, elapsed = _run(
        GreedyLowestIntensityRouting(),
        dispatch=CarbonBufferDispatch(),
        case="ten-million-year-bucket",
        devices_per_site=TEN_MILLION_DEVICES_PER_SITE,
        n_days=TEN_MILLION_N_DAYS,
        demand=demand,
        block_days=366,
        shards=2,
        churn_sampler="bucket",
    )

    devices = 2 * TEN_MILLION_DEVICES_PER_SITE
    throughput = devices * TEN_MILLION_N_DAYS / elapsed
    report(
        "Fleet scaling (10M devices, 1 year, bucketed churn)",
        f"wall clock: {elapsed:.2f} s "
        f"({throughput / 1e6:.1f}M device-days/s)\n"
        f"avoided {result.carbon_avoided_g() / 1e6:.1f} t operational carbon",
    )
    assert result.active_devices.shape == (TEN_MILLION_N_DAYS, 2)
    assert elapsed < TEN_MILLION_WALL_CLOCK_BUDGET_S
    assert result.failures.sum() > 100_000
    assert result.carbon_avoided_g() > 0
    assert float(result.soc.min()) >= 0.25 - 1e-9
    assert float(result.soc.max()) <= 1.0 + 1e-9


def test_carbon_aware_beats_round_robin(report):
    baseline, _ = _run(RoundRobinRouting(), case="round-robin-year")
    greedy, _ = _run(GreedyLowestIntensityRouting())
    marginal, _ = _run(CapacityAwareMarginalCciRouting())

    # Identical service delivered...
    assert np.isclose(
        baseline.total_served_requests, greedy.total_served_requests, rtol=1e-9
    )
    # ...at strictly lower operational carbon for both carbon-aware policies.
    assert greedy.total_operational_carbon_g < baseline.total_operational_carbon_g
    assert marginal.total_operational_carbon_g < baseline.total_operational_carbon_g
    # The asymmetry is large (ERCOT-like vs hydro-heavy), so the win should
    # be substantial, not epsilon.
    savings = 1.0 - greedy.total_operational_carbon_g / baseline.total_operational_carbon_g
    assert savings > 0.05

    report(
        "Policy comparison (10k devices, 1 year)",
        "\n".join(
            f"{name}: {r.total_operational_carbon_g / 1e3:.1f} kg operational, "
            f"CCI {r.fleet_cci_g_per_request():.3e} g/request"
            for name, r in (
                ("round-robin", baseline),
                ("greedy-lowest-intensity", greedy),
                ("marginal-cci", marginal),
            )
        )
        + f"\ngreedy saves {savings:.1%} operational carbon vs round-robin",
    )
