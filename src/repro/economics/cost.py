"""Dollar-cost comparison of the junkyard cloudlet versus cloud rental.

Section 6.2 of the paper notes that the ten-phone cloudlet costs about
$1,027.60 over a three-year deployment (eBay phones plus Californian
electricity) while renting the c5.9xlarge it performs like costs roughly
$40,404 on-demand over the same period.  This module reproduces that
arithmetic and generalises it to arbitrary device fleets and tariffs so the
economics can be swept alongside the carbon analyses (TCO and carbon are not
always aligned — one of the paper's observations about existing metrics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import units
from repro.cluster.peripherals import PeripheralSet
from repro.devices.power import LIGHT_MEDIUM, LoadProfile
from repro.devices.specs import DeviceSpec

#: Average Californian retail electricity price the cost model defaults to
#: ($ per kWh).
CALIFORNIA_ELECTRICITY_USD_PER_KWH = 0.22


@dataclass(frozen=True)
class OwnershipCost:
    """Cost breakdown of owning and operating a device fleet."""

    purchase_usd: float
    peripherals_usd: float
    energy_usd: float
    maintenance_usd: float = 0.0

    @property
    def total_usd(self) -> float:
        """Total cost of ownership."""
        return self.purchase_usd + self.peripherals_usd + self.energy_usd + self.maintenance_usd


@dataclass(frozen=True)
class FleetCostModel:
    """Purchase + electricity + churn cost model for a fleet of owned devices.

    Beyond the paper's purchase-plus-electricity arithmetic, the model prices
    the *churn* a long-running fleet generates (measured by
    :class:`~repro.fleet.reporting.FleetReport` counters): every battery swap
    costs a replacement pack plus ``battery_swap_labor_min`` minutes of
    technician time at ``labor_usd_per_hour``, and every spare deployed to
    replace a failed/retired device costs ``intake_acquisition_usd`` to
    acquire (eBay price, shipping, intake testing).  ``None`` acquisition
    defaults to the device's catalog purchase price.
    """

    device: DeviceSpec
    n_devices: int
    peripherals: PeripheralSet = field(default_factory=PeripheralSet.empty)
    load_profile: LoadProfile = LIGHT_MEDIUM
    electricity_usd_per_kwh: float = CALIFORNIA_ELECTRICITY_USD_PER_KWH
    battery_replacement_usd: float = 25.0
    battery_swap_labor_min: float = 15.0
    labor_usd_per_hour: float = 30.0
    intake_acquisition_usd: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_devices <= 0:
            raise ValueError("device count must be positive")
        if self.electricity_usd_per_kwh < 0:
            raise ValueError("electricity price must be non-negative")
        if self.battery_replacement_usd < 0:
            raise ValueError("battery replacement cost must be non-negative")
        if self.battery_swap_labor_min < 0:
            raise ValueError("battery-swap labor minutes must be non-negative")
        if self.labor_usd_per_hour < 0:
            raise ValueError("labor rate must be non-negative")
        if self.intake_acquisition_usd is not None and self.intake_acquisition_usd < 0:
            raise ValueError("intake acquisition cost must be non-negative")

    def average_power_w(self) -> float:
        """Average fleet power including peripherals."""
        return (
            self.n_devices * self.device.average_power_w(self.load_profile)
            + self.peripherals.total_power_w
        )

    def energy_cost_usd(self, lifetime_months: float) -> float:
        """Electricity cost over the deployment."""
        if lifetime_months <= 0:
            raise ValueError("lifetime must be positive")
        kwh = units.joules_to_kwh(
            self.average_power_w() * units.months_to_seconds(lifetime_months)
        )
        return kwh * self.electricity_usd_per_kwh

    def maintenance_cost_usd(self, lifetime_months: float) -> float:
        """Battery-replacement parts cost over the deployment (labour excluded)."""
        if self.device.battery is None:
            return 0.0
        from repro.devices.battery import replacements_over_lifetime

        packs = replacements_over_lifetime(
            self.device.battery,
            self.device.average_power_w(self.load_profile),
            lifetime_months,
        )
        replacements = max(0, packs - 1)
        return replacements * self.n_devices * self.battery_replacement_usd

    def cost(self, lifetime_months: float, include_maintenance: bool = False) -> OwnershipCost:
        """Full ownership cost over the deployment."""
        return OwnershipCost(
            purchase_usd=self.n_devices * self.device.purchase_price_usd,
            peripherals_usd=self.peripherals.total_cost_usd,
            energy_usd=self.energy_cost_usd(lifetime_months),
            maintenance_usd=(
                self.maintenance_cost_usd(lifetime_months) if include_maintenance else 0.0
            ),
        )

    # -- churn-driven costs (fleet subsystem) ------------------------------

    @property
    def acquisition_usd_per_device(self) -> float:
        """Cost of acquiring one replacement device into the spare pool."""
        if self.intake_acquisition_usd is not None:
            return self.intake_acquisition_usd
        return self.device.purchase_price_usd

    def battery_wear_cost_usd(self, throughput_kwh: float) -> float:
        """Pro-rated pack cost of cycling ``throughput_kwh`` through the fleet.

        The energy-dispatch ledger (UPS-as-carbon-buffer) consumes battery
        cycle life with every discharged kWh: ``throughput / (capacity *
        cycle_life)`` packs' worth of wear, each priced at a replacement pack
        plus the swap labour, linearly so scenarios can weigh carbon avoided
        against dollars of pack life spent.  Deliberately conservative: the
        cohort model cycle-counts all device energy too, so on horizons long
        enough to realise swaps this overlaps with :meth:`churn_cost_usd` —
        the dispatch mode is charged for its pack usage up front rather than
        only when a swap lands inside the window.
        """
        if throughput_kwh < 0:
            raise ValueError("battery throughput must be non-negative")
        battery = self.device.battery
        if battery is None or throughput_kwh == 0:
            return 0.0
        packs = (throughput_kwh * units.JOULES_PER_KWH) / (
            battery.capacity_joules * battery.cycle_life
        )
        labor_usd = self.battery_swap_labor_min / 60.0 * self.labor_usd_per_hour
        return packs * (self.battery_replacement_usd + labor_usd)

    def churn_cost_usd(self, battery_swaps: int, devices_deployed: int) -> float:
        """Cost of realised churn: swap parts + swap labor + spare acquisition.

        ``battery_swaps`` and ``devices_deployed`` are the counters a
        :class:`~repro.fleet.reporting.FleetReport` accumulates per site
        (``deployed`` counts only replacements — the initial deployment is
        charged as ``purchase_usd``).
        """
        if battery_swaps < 0 or devices_deployed < 0:
            raise ValueError("churn counters must be non-negative")
        labor_usd = (
            battery_swaps * self.battery_swap_labor_min / 60.0 * self.labor_usd_per_hour
        )
        parts_usd = battery_swaps * self.battery_replacement_usd
        acquisition_usd = devices_deployed * self.acquisition_usd_per_device
        return labor_usd + parts_usd + acquisition_usd

    def scenario_cost(
        self,
        duration_days: float,
        battery_swaps: int = 0,
        devices_deployed: int = 0,
        energy_kwh: Optional[float] = None,
        battery_throughput_kwh: float = 0.0,
    ) -> OwnershipCost:
        """Ownership cost over a scenario horizon, with churn as maintenance.

        Unlike :meth:`cost`, which estimates battery replacements from the
        device's nominal cycling rate, this variant consumes the *measured*
        quantities of a fleet simulation — the churn counters and, when
        ``energy_kwh`` is given, the realised site energy (live device
        counts at routed utilisation, the same series the carbon ledger
        integrated) — so the dollars track exactly what the carbon tracked.
        Without ``energy_kwh`` the electricity term falls back to the
        nominal full-fleet draw at the load profile's average utilisation.
        ``battery_throughput_kwh`` is the dispatch ledger's discharge
        throughput, priced as pro-rated pack wear on top of the realised
        churn.
        """
        if duration_days <= 0:
            raise ValueError("duration must be positive")
        if energy_kwh is None:
            energy_kwh = units.joules_to_kwh(
                self.average_power_w() * duration_days * units.SECONDS_PER_DAY
            )
        elif energy_kwh < 0:
            raise ValueError("energy must be non-negative")
        return OwnershipCost(
            purchase_usd=self.n_devices * self.device.purchase_price_usd,
            peripherals_usd=self.peripherals.total_cost_usd,
            energy_usd=energy_kwh * self.electricity_usd_per_kwh,
            maintenance_usd=self.churn_cost_usd(battery_swaps, devices_deployed)
            + self.battery_wear_cost_usd(battery_throughput_kwh),
        )


@dataclass(frozen=True)
class CloudRentalCostModel:
    """On-demand rental cost of a cloud instance."""

    instance: DeviceSpec
    usd_per_hour: Optional[float] = None

    def hourly_rate(self) -> float:
        """Hourly price, from the instance's catalog metadata unless overridden."""
        if self.usd_per_hour is not None:
            return self.usd_per_hour
        rate = self.instance.extra.get("on_demand_usd_per_hour")
        if rate is None:
            raise ValueError(
                f"{self.instance.name} has no on-demand price; pass usd_per_hour explicitly"
            )
        return float(rate)

    def cost_usd(self, lifetime_months: float) -> float:
        """Total rental cost over the deployment."""
        if lifetime_months <= 0:
            raise ValueError("lifetime must be positive")
        hours = units.months_to_hours(lifetime_months)
        return hours * self.hourly_rate()


@dataclass(frozen=True)
class CostComparison:
    """Side-by-side cost of an owned fleet versus a rented instance."""

    fleet: OwnershipCost
    cloud_usd: float
    lifetime_months: float

    @property
    def savings_usd(self) -> float:
        """Dollars saved by the owned fleet."""
        return self.cloud_usd - self.fleet.total_usd

    @property
    def cost_ratio(self) -> float:
        """Cloud cost divided by fleet cost (how many times cheaper the fleet is)."""
        if self.fleet.total_usd == 0:
            return float("inf")
        return self.cloud_usd / self.fleet.total_usd


def cloudlet_vs_cloud_cost(
    fleet: FleetCostModel,
    cloud: CloudRentalCostModel,
    lifetime_months: float = 36.0,
    include_maintenance: bool = False,
) -> CostComparison:
    """Compare a device fleet against renting a cloud instance for the same period."""
    return CostComparison(
        fleet=fleet.cost(lifetime_months, include_maintenance=include_maintenance),
        cloud_usd=cloud.cost_usd(lifetime_months),
        lifetime_months=lifetime_months,
    )
