"""Figure 8 — per-phone CPU utilisation while serving SocialNetwork."""

from conftest import full_fidelity

from repro.analysis.figures import fig8_cpu_utilization
from repro.analysis.report import format_table


def test_fig8_cpu_utilization(benchmark, report):
    duration = 4.0 if full_fidelity() else 2.0

    data = benchmark.pedantic(
        fig8_cpu_utilization,
        kwargs={"duration_s": duration, "warmup_s": 0.4},
        rounds=1,
        iterations=1,
    )
    rows = []
    for node in sorted(data.read_utilization):
        services = ", ".join(data.placement[node][:3])
        rows.append(
            [
                node,
                f"{100 * data.read_utilization[node]:.0f}%",
                f"{100 * data.write_utilization[node]:.0f}%",
                services,
            ]
        )
    report(
        f"Figure 8: per-phone CPU utilisation (read @{data.read_qps:.0f} QPS, "
        f"write @{data.write_qps:.0f} QPS)",
        format_table(["Phone", "Read util", "Write util", "Hosts (first 3)"], rows),
    )

    read = list(data.read_utilization.values())
    write = list(data.write_utilization.values())
    # The cloudlet as a whole is not CPU-bound ...
    assert sum(read) / len(read) < 0.6
    assert sum(write) / len(write) < 0.6
    # ... utilisation varies widely with the services each phone hosts ...
    assert max(read) > 3 * (min(read) + 1e-6)
    # ... and a large share of the phones make little use of their CPUs
    # (paper: 6/10 devices lightly used).
    assert data.lightly_used_fraction(threshold=0.35) >= 0.4
