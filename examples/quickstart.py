#!/usr/bin/env python3
"""Quickstart: is a junk-drawer phone worth more carbon-wise than a new server?

This example walks through the paper's core question with the public API:

1. build carbon models for a reused Pixel 3A and a brand-new PowerEdge R740;
2. compare their Computational Carbon Intensity (CCI) over a five-year
   service lifetime on three Geekbench workloads;
3. size a phone cluster that matches the server's throughput and report the
   cluster-level comparison including peripherals and battery replacements.

Run with ``python examples/quickstart.py``.
"""

from repro import (
    DeviceCarbonModel,
    PIXEL_3A,
    POWEREDGE_R740,
    SGEMM,
    default_lifetimes,
)
from repro.analysis.report import format_table, render_lifetime_sweep
from repro.cluster import paper_cloudlets
from repro.core import LifetimeSweep
from repro.devices import DIJKSTRA, PDF_RENDER


def single_device_comparison() -> None:
    """Compare one reused phone against one new server, per unit of work."""
    phone = DeviceCarbonModel(PIXEL_3A, reused=True, include_battery_replacement=True)
    server = DeviceCarbonModel(POWEREDGE_R740, reused=False)

    rows = []
    for benchmark in (SGEMM, PDF_RENDER, DIJKSTRA):
        phone_cci = phone.cci(benchmark, 36.0)
        server_cci = server.cci(benchmark, 36.0)
        rows.append(
            [
                benchmark.name,
                f"{phone_cci:.3e}",
                f"{server_cci:.3e}",
                f"{server_cci / phone_cci:.1f}x",
            ]
        )
    print("Single device, 3-year lifetime (gCO2e per unit of work):")
    print(
        format_table(
            ["Benchmark", "Reused Pixel 3A", "New PowerEdge R740", "Phone advantage"],
            rows,
        )
    )
    print()


def cluster_comparison() -> None:
    """Compare performance-equivalent clusters (the paper's Figure 5 setting)."""
    months = default_lifetimes()
    designs = paper_cloudlets(SGEMM, regime="california")
    sweep = LifetimeSweep(
        months=months,
        series={name: design.cci_series(SGEMM, months) for name, design in designs.items()},
        metric_unit="gCO2e/Gflop",
    )
    print("Cluster-level CCI for PowerEdge-equivalent systems (SGEMM):")
    print(render_lifetime_sweep(sweep))
    best, value = sweep.best_at(36.0)
    print(f"\nMost carbon-efficient system after 3 years: {best} ({value:.3e} gCO2e/Gflop)")
    print()


def main() -> None:
    print(PIXEL_3A.describe())
    print(POWEREDGE_R740.describe())
    print()
    single_device_comparison()
    cluster_comparison()


if __name__ == "__main__":
    main()
