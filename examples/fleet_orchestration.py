#!/usr/bin/env python3
"""Fleet orchestration: carbon-aware routing across geo-distributed cloudlets.

The paper evaluates one static phone cluster on one grid.  This example runs
the fleet subsystem over months of virtual time instead:

1. build a two-site fleet of reused Pixel 3A phones — a Texas-like
   (wind+gas, dirty evenings) site and a Pacific-Northwest-like
   (hydro-heavy, clean) site — each with its own device-churn lifecycle;
2. serve the same diurnal demand under three routing policies
   (capacity-proportional round-robin, greedy lowest-intensity, and
   capacity-aware marginal-CCI);
3. report fleet CCI, availability, battery churn, and the operational-carbon
   savings carbon-aware routing buys;
4. run the DES-backed latency-aware path to check the carbon-optimal policy
   does not wreck request latency.

Run with ``python examples/fleet_orchestration.py``.
"""

from repro.analysis import fig10_fleet_orchestration, render_fleet_report
from repro.fleet import (
    GreedyLowestIntensityRouting,
    simulate_latency_aware,
    two_site_asymmetric_fleet,
)


def policy_comparison() -> None:
    """Six simulated months of the two-site fleet under each policy."""
    data = fig10_fleet_orchestration(n_devices_per_site=300, n_days=180, seed=11)
    for policy in data.policies():
        print(f"--- {policy} ---")
        print(render_fleet_report(data.reports[policy]))
        print()
    for policy in ("greedy-lowest-intensity", "marginal-cci"):
        savings = data.savings_vs(policy)
        print(f"{policy}: {savings:.1%} less operational carbon than round-robin")
    print()


def latency_check() -> None:
    """The DES path: does carbon-greedy routing keep latencies sane?"""
    sites = two_site_asymmetric_fleet(50, seed=11, n_trace_days=7)
    summary, by_site = simulate_latency_aware(
        sites,
        GreedyLowestIntensityRouting(),
        demand_rps=400.0,
        duration_s=30.0,
        seed=11,
    )
    print("Latency-aware DES check (greedy policy, 400 rps for 30 s):")
    print(
        f"  median {summary.median_ms:.1f} ms, p99 {summary.p99_ms:.1f} ms, "
        f"completion {summary.completion_ratio:.1%}"
    )
    print(f"  per-site served counts: {by_site}")


def main() -> None:
    policy_comparison()
    latency_check()


if __name__ == "__main__":
    main()
