"""Carbon-aware multi-site request routing and the fleet simulation loop.

Routing policies decide, hour by hour, how much of the fleet's request
demand each *cohort segment* serves.  A segment is one
:class:`~repro.fleet.sites.SiteCohort` of one site — sites mixing several
device types expose one segment per type, each with its own capacity and
marginal-CCI column, so carbon-aware routing can prefer the efficient
device type *inside* a site, not just between sites.  A fleet of
single-cohort sites has exactly one segment per site, reproducing the
historical per-site allocation bit for bit.  All three bundled policies are
*capacity-feasible* (they never route more than a segment can serve) and
fully vectorized — an allocation for a whole year of hourly timesteps
across all segments is a single NumPy pass:

* :class:`RoundRobinRouting` — demand split proportional to live capacity,
  the carbon-oblivious baseline (DNS round-robin across healthy devices);
* :class:`GreedyLowestIntensityRouting` — fill the site with the lowest
  instantaneous grid carbon intensity first, then the next, and so on;
* :class:`CapacityAwareMarginalCciRouting` — the same waterfill, but ranked
  by the *marginal CCI* of one extra request at each site: dynamic energy
  per request times local intensity plus amortised battery-wear carbon.
  This correctly prefers an efficient device on a middling grid over an
  inefficient one on a slightly cleaner grid.

Every policy accepts a ``wear_derate`` factor for battery-aware load
shedding: a site's effective capacity is scaled by
``1 - wear_derate * mean_battery_wear``, so cohorts with nearly-spent packs
shed load (and battery cycling) to healthier sites.

:class:`FleetSimulation` couples the hourly routing path with the daily
population dynamics of :mod:`repro.fleet.population`: capacity follows the
live device count, realised utilisation drives battery cycling, and churn
feeds replacement carbon into the fleet ledger.  With a
:class:`~repro.fleet.dispatch.DispatchPolicy` in the loop, each site also
carries a battery state-of-charge ledger: clean hours charge the packs from
idle headroom, dirty hours serve device load from the packs
(UPS-as-carbon-buffer), and the report gains grid/battery/charge/SoC
series.  For latency-aware questions, :func:`simulate_latency_aware` runs
the same sites and policy on the discrete-event engine of
:mod:`repro.simulation` instead.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import units
from repro.fleet.dispatch import DispatchPolicy, site_packs
from repro.fleet.execution import execute_dispatch
from repro.fleet.reporting import FleetReport
from repro.fleet.sites import FleetSite, SiteCohort
from repro.microservices.calibration import SERVICE_TIME_SIGMA
from repro.simulation.engine import Simulator, Timeout
from repro.simulation.metrics import LatencyRecorder, LatencySummary, summarize
from repro.simulation.random_streams import RandomStreams
from repro.telemetry import ensure_telemetry

#: Service-time distributions :func:`simulate_latency_aware` can draw from.
#: ``deterministic`` reproduces the historical fixed ``1/rate`` service time;
#: the stochastic shapes keep that mean, with the lognormal's log-sigma from
#: the microservice simulator's calibrated variability
#: (:data:`~repro.microservices.calibration.SERVICE_TIME_SIGMA`).
SERVICE_DISTRIBUTIONS = ("deterministic", "exponential", "lognormal")

#: Hours per scheduling timestep of the vectorized path.
HOURS_PER_STEP = 1.0


# ---------------------------------------------------------------------------
# Demand
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DiurnalDemand:
    """A deterministic diurnal + weekly fleet demand model (requests/s).

    Demand follows a sinusoidal daily cycle peaking at ``peak_hour`` with
    relative amplitude ``daily_amplitude``, modulated by a weekly cycle that
    dips on the weekend.  Determinism matters: the scheduler's reproducibility
    guarantee (fixed seed => identical fleet CCI) must not depend on demand
    noise, so any stochastic demand belongs in a wrapping model.
    """

    mean_rps: float
    daily_amplitude: float = 0.35
    peak_hour: float = 20.0
    weekly_amplitude: float = 0.10

    def __post_init__(self) -> None:
        if self.mean_rps <= 0:
            raise ValueError("mean demand must be positive")
        if not 0.0 <= self.daily_amplitude < 1.0:
            raise ValueError("daily amplitude must be within [0, 1)")
        if not 0.0 <= self.weekly_amplitude < 1.0:
            raise ValueError("weekly amplitude must be within [0, 1)")

    def series(self, n_hours: int, start_hour: float = 0.0) -> np.ndarray:
        """Demand (requests/s) for ``n_hours`` hourly timesteps."""
        if n_hours <= 0:
            raise ValueError("n_hours must be positive")
        hours = start_hour + np.arange(n_hours, dtype=float)
        daily = 1.0 + self.daily_amplitude * np.cos(
            2.0 * np.pi * (hours - self.peak_hour) / 24.0
        )
        # Minimum at day 5.5 (the weekend midpoint), renormalised so the
        # weekly mean stays exactly mean_rps.
        weekly = 1.0 - self.weekly_amplitude * 0.5 * (
            1.0 + np.cos(2.0 * np.pi * (hours / 24.0 - 5.5) / 7.0)
        )
        weekly /= 1.0 - self.weekly_amplitude / 2.0
        return self.mean_rps * daily * weekly


# ---------------------------------------------------------------------------
# Routing policies (vectorized hourly path)
# ---------------------------------------------------------------------------


class RoutingPolicy(abc.ABC):
    """Allocates hourly fleet demand across cohort segments.

    ``wear_derate`` enables battery-aware load shedding: the capacity the
    policy sees for a segment is scaled by ``1 - wear_derate *
    mean_battery_wear`` of its cohort, so heavily-cycled cohorts are offered
    less load and wear out fewer replacement packs.  ``0`` (the default)
    reproduces the wear-oblivious behaviour exactly.
    """

    name: str = "policy"

    def __init__(self, wear_derate: float = 0.0) -> None:
        if not 0.0 <= wear_derate <= 1.0:
            raise ValueError(f"wear derate must be within [0, 1], got {wear_derate}")
        self.wear_derate = wear_derate

    def site_capacity_rps(self, site: FleetSite) -> float:
        """The capacity this policy offers to route toward one site."""
        return site.effective_capacity_rps(self.wear_derate)

    def cohort_capacity_rps(self, entry: SiteCohort) -> float:
        """The capacity this policy offers to route toward one cohort segment."""
        return entry.effective_capacity_rps(self.wear_derate)

    @abc.abstractmethod
    def allocate(
        self,
        demand_rps: np.ndarray,
        capacity_rps: np.ndarray,
        intensity: np.ndarray,
        marginal_g_per_request: np.ndarray,
    ) -> np.ndarray:
        """Return served requests/s per ``(timestep, segment)``.

        ``demand_rps`` has shape ``(T,)``; the three matrices have shape
        ``(T, C)`` for ``C`` cohort segments (``C == S`` when every site has
        one cohort).  Implementations must return a non-negative ``(T, C)``
        allocation with per-segment values bounded by ``capacity_rps`` and
        row sums bounded by ``demand_rps`` (unmet demand is dropped and
        reported by the simulation).
        """

    def request_key(self, site: FleetSite, now_s: float) -> Optional[float]:
        """Per-request ranking key for the DES path (lower is better).

        Keys are in *grams of CO2e per request* so the DES scheduler can add
        a gram-denominated backlog penalty without mixing units.  Returning
        ``None`` opts out of carbon ranking: the scheduler falls back to
        capacity-weighted rotation (true per-request round-robin).
        """
        return site.marginal_carbon_g_per_request(now_s)


def _waterfill(
    demand_rps: np.ndarray, capacity_rps: np.ndarray, key: np.ndarray
) -> np.ndarray:
    """Fill sites in ascending ``key`` order up to capacity, per timestep."""
    order = np.argsort(key, axis=1, kind="stable")
    cap_sorted = np.take_along_axis(capacity_rps, order, axis=1)
    cum_before = np.cumsum(cap_sorted, axis=1) - cap_sorted
    remaining = np.clip(demand_rps[:, None] - cum_before, 0.0, None)
    alloc_sorted = np.minimum(cap_sorted, remaining)
    alloc = np.empty_like(alloc_sorted)
    np.put_along_axis(alloc, order, alloc_sorted, axis=1)
    return alloc


class RoundRobinRouting(RoutingPolicy):
    """Carbon-oblivious baseline: split demand proportional to live capacity."""

    name = "round-robin"

    def allocate(
        self,
        demand_rps: np.ndarray,
        capacity_rps: np.ndarray,
        intensity: np.ndarray,
        marginal_g_per_request: np.ndarray,
    ) -> np.ndarray:
        total = capacity_rps.sum(axis=1)
        served_total = np.minimum(demand_rps, total)
        with np.errstate(invalid="ignore", divide="ignore"):
            share = np.where(total[:, None] > 0, capacity_rps / total[:, None], 0.0)
        return share * served_total[:, None]

    def request_key(self, site: FleetSite, now_s: float) -> Optional[float]:
        return None  # carbon-oblivious: rotate across sites instead


class GreedyLowestIntensityRouting(RoutingPolicy):
    """Waterfill sites from cleanest to dirtiest instantaneous grid."""

    name = "greedy-lowest-intensity"

    def allocate(
        self,
        demand_rps: np.ndarray,
        capacity_rps: np.ndarray,
        intensity: np.ndarray,
        marginal_g_per_request: np.ndarray,
    ) -> np.ndarray:
        return _waterfill(demand_rps, capacity_rps, intensity)

    def request_key(self, site: FleetSite, now_s: float) -> Optional[float]:
        # Intensity ranking expressed in grams: dynamic energy x intensity,
        # without the wear term the marginal-CCI policy adds.
        return site.marginal_carbon_g_for_intensity(
            site.intensity_at(now_s), include_wear=False
        )


class CapacityAwareMarginalCciRouting(RoutingPolicy):
    """Waterfill ranked by marginal carbon per request (energy x intensity + wear)."""

    name = "marginal-cci"

    def allocate(
        self,
        demand_rps: np.ndarray,
        capacity_rps: np.ndarray,
        intensity: np.ndarray,
        marginal_g_per_request: np.ndarray,
    ) -> np.ndarray:
        return _waterfill(demand_rps, capacity_rps, marginal_g_per_request)


#: Registry of the bundled policies, keyed by their public names.
POLICIES: Dict[str, type] = {
    RoundRobinRouting.name: RoundRobinRouting,
    GreedyLowestIntensityRouting.name: GreedyLowestIntensityRouting,
    CapacityAwareMarginalCciRouting.name: CapacityAwareMarginalCciRouting,
}


def policy_by_name(name: str, wear_derate: float = 0.0) -> RoutingPolicy:
    """Instantiate one of the bundled routing policies by name."""
    try:
        cls = POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise ValueError(f"unknown policy {name!r}; expected one of: {known}") from None
    return cls(wear_derate=wear_derate)


# ---------------------------------------------------------------------------
# Fleet simulation (vectorized hourly path + daily population dynamics)
# ---------------------------------------------------------------------------


class FleetSimulation:
    """Couples hourly carbon-aware routing with daily device-churn dynamics.

    Each simulated day steps through four phases: (1) the routing policy
    allocates 24 hourly demand steps across the cohort segments' live
    (wear-derated) capacities, local grid intensities, and per-device-type
    marginal-CCI terms, (2) the dispatch policy — when one is coupled in —
    co-decides per hour whether each cohort's served device load draws from
    grid or from its own battery pack and whether its idle headroom charges
    the pack, (3) each site's operational carbon integrates the realised
    *wall* energy (grid serving + battery charging) against its trace, and
    (4) each cohort steps one day of aging, failures, battery wear, and
    spare deployment at the utilisation the routing actually produced on
    *that* device type, with its own independent RNG stream.

    Without a dispatch policy the batteries stay full (the decoupled
    baseline) and the grid/battery/charge series degenerate to
    ``grid == energy``, ``battery == charge == 0``, ``soc == 1``.

    Execution is two-pass.  Pass A is the irreducibly serial day loop:
    capacity follows churn and churn follows realised utilisation, so
    allocation and population stepping must alternate day by day — but the
    purely time-indexed inputs (demand series, grid intensities, marginal
    CCI) are hoisted and precomputed ``block_days`` days at a time
    (bitwise-identical: they are elementwise functions of exactly
    representable hour indices).  Pass B replays the entire dispatch
    timeline afterwards from what Pass A recorded, through the ledger's
    vectorized :meth:`~repro.fleet.dispatch.EnergyLedger.step_block`,
    optionally sharded across ``shards`` worker processes by contiguous
    site ranges (see :mod:`repro.fleet.execution`).  ``block_days`` and
    ``shards`` are pure performance knobs: every setting produces
    bitwise-identical reports, counters, and RNG streams (locked by
    ``tests/fleet/test_execution_identity.py``).
    """

    def __init__(
        self,
        sites: Sequence[FleetSite],
        policy: RoutingPolicy,
        demand: DiurnalDemand,
        dispatch: Optional[DispatchPolicy] = None,
        telemetry=None,
        block_days: int = 1,
        shards: int = 1,
        audit: bool = False,
    ) -> None:
        if not sites:
            raise ValueError("a fleet needs at least one site")
        if block_days < 1:
            raise ValueError(f"block_days must be >= 1, got {block_days}")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.block_days = int(block_days)
        self.shards = int(shards)
        #: Opt-in invariant audit: after Pass B, re-derive the conservation
        #: laws the report must obey (see
        #: :mod:`repro.telemetry.observatory.audit`).  The auditor only
        #: reads finished matrices — results are bitwise-identical either
        #: way, and a disabled audit never even imports the module.
        self.audit = bool(audit)
        self.audit_report = None
        names = [site.name for site in sites]
        if len(set(names)) != len(names):
            raise ValueError(f"site names must be unique, got {names}")
        self.sites = list(sites)
        self.policy = policy
        self.demand = demand
        self.dispatch = dispatch
        #: Instrumentation context; the no-op default costs nothing and
        #: telemetry never touches RNG or numeric state (locked by tests).
        self.telemetry = ensure_telemetry(telemetry)
        #: Cohort segments in site-major order — the allocation columns.
        self.segments = site_packs(self.sites)
        #: Site index of each segment, and each site's first segment index
        #: (the ``reduceat`` boundaries for per-site aggregation).
        self._segment_site = np.array(
            [
                site_index
                for site_index, site in enumerate(self.sites)
                for _ in site.cohorts
            ],
            dtype=np.int64,
        )
        starts = []
        cursor = 0
        for site in self.sites:
            starts.append(cursor)
            cursor += len(site.cohorts)
        self._site_starts = np.array(starts, dtype=np.int64)

    def _per_site(self, array: np.ndarray) -> np.ndarray:
        """Sum segment columns into site columns (identity for 1-cohort sites)."""
        return np.add.reduceat(array, self._site_starts, axis=-1)

    def run(self, n_days: int) -> FleetReport:
        """Simulate ``n_days`` of virtual time and return the fleet report."""
        if n_days <= 0:
            raise ValueError("n_days must be positive")
        n_sites = len(self.sites)
        n_cohorts = len(self.segments)
        hours_per_day = int(round(24.0 / HOURS_PER_STEP))
        step_s = HOURS_PER_STEP * units.SECONDS_PER_HOUR
        n_steps = n_days * hours_per_day

        # Pass A recordings: what the deferred dispatch replay will consume.
        alloc_all = np.empty((n_steps, n_cohorts))
        demand_all = np.empty(n_steps)
        intensity_packs = np.empty((n_steps, n_cohorts))
        utilization_all = np.empty((n_steps, n_cohorts))
        counts_day = np.zeros((n_days, n_cohorts), dtype=np.int64)

        active = np.zeros((n_days, n_sites), dtype=np.int64)
        replacement_g = np.zeros((n_days, n_sites))
        battery_swaps = np.zeros((n_days, n_sites), dtype=np.int64)
        failures = np.zeros((n_days, n_sites), dtype=np.int64)
        deployed = np.zeros((n_days, n_sites), dtype=np.int64)
        cohort_active = np.zeros((n_days, n_cohorts), dtype=np.int64)
        cohort_replacement_g = np.zeros((n_days, n_cohorts))
        cohort_swaps = np.zeros((n_days, n_cohorts), dtype=np.int64)
        cohort_failures = np.zeros((n_days, n_cohorts), dtype=np.int64)
        cohort_deployed = np.zeros((n_days, n_cohorts), dtype=np.int64)
        cohort_retirements = np.zeros((n_days, n_cohorts), dtype=np.int64)

        tele = self.telemetry

        # -- Pass A: the serial coordinator loop ---------------------------
        # Allocation and churn are irreducibly day-sequential (capacity for
        # day d+1 depends on churn at day d, churn depends on realised
        # utilisation), but the time-indexed inputs hoist: one precompute
        # per block covers demand, intensity, and marginal CCI for every
        # day in it (calls=0: setup time folds into the phase without
        # inflating its invocation count).
        for block_start in range(0, n_days, self.block_days):
            block_stop = min(block_start + self.block_days, n_days)
            with tele.span("allocate_day", calls=0):
                block_demand, block_intensity, block_marginal = (
                    self._precompute_block(
                        block_start, block_stop, hours_per_day, step_s
                    )
                )
            block_rows = slice(
                block_start * hours_per_day, block_stop * hours_per_day
            )
            demand_all[block_rows] = block_demand
            intensity_packs[block_rows] = block_intensity
            for day in range(block_start, block_stop):
                offset = (day - block_start) * hours_per_day
                local = slice(offset, offset + hours_per_day)
                rows = slice(day * hours_per_day, (day + 1) * hours_per_day)
                with tele.span("allocate_day"):
                    alloc = self._allocate_day(
                        hours_per_day,
                        step_s,
                        block_demand[local],
                        block_intensity[local],
                        block_marginal[local],
                    )
                alloc_all[rows] = alloc
                if tele.enabled:
                    # "Segments touched": (hour, segment) cells the
                    # waterfill actually routed load through this day.
                    tele.count(
                        "routing.waterfill_segments_touched",
                        int(np.count_nonzero(alloc)),
                    )
                # Day-start counts — what the legacy per-day loop's live
                # capability reads saw — recorded before churn moves them.
                counts_day[day] = [
                    entry.cohort.active_count for _, entry in self.segments
                ]

                # Daily population step at the realised utilisation; the
                # same matrix feeds dispatch idle headroom in Pass B.
                with tele.span("step_population"):
                    utilization = self._physical_utilization(alloc)
                    day_step = self._step_population(utilization)
                utilization_all[rows] = utilization
                cohort_active[day] = day_step["active"]
                cohort_replacement_g[day] = day_step["replacement_carbon_g"]
                cohort_swaps[day] = day_step["battery_swaps"]
                cohort_failures[day] = day_step["failures"]
                cohort_deployed[day] = day_step["deployed"]
                cohort_retirements[day] = day_step["retirements"]
                active[day] = self._per_site(day_step["active"])
                replacement_g[day] = self._per_site(
                    day_step["replacement_carbon_g"]
                )
                battery_swaps[day] = self._per_site(day_step["battery_swaps"])
                failures[day] = self._per_site(day_step["failures"])
                deployed[day] = self._per_site(day_step["deployed"])

        if tele.enabled:
            # Which churn engine stepped this run, and how many distinct
            # device-state buckets it peaked at (0 for the per-device
            # reference, which has no bucket structure to count).
            samplers = {
                getattr(entry.cohort, "sampler_name", "device")
                for _, entry in self.segments
            }
            tele.gauge(
                "churn.sampler",
                samplers.pop() if len(samplers) == 1 else "mixed",
            )
            tele.gauge(
                "churn.buckets_peak",
                max(
                    getattr(entry.cohort, "buckets_peak", 0)
                    for _, entry in self.segments
                ),
            )

        # -- Pass B: whole-run vectorized reductions and dispatch replay ---
        cohort_served = alloc_all
        served = self._per_site(alloc_all)
        dropped = demand_all - alloc_all.sum(axis=1)
        intensity_all = intensity_packs[:, self._site_starts]

        # Device energy each cohort needs per hour; site wall energy adds
        # the (never battery-backed) peripheral draw once per site.
        peripheral_kwh = np.array(
            [site.peripheral_power_w for site in self.sites]
        ) * (step_s / units.JOULES_PER_KWH)
        with tele.span("site_energy_kwh", calls=n_days):
            device_kwh = self._cohort_energy_kwh(
                alloc_all, counts_day, hours_per_day, step_s
            )
        cohort_energy_kwh = device_kwh
        total_kwh = self._per_site(device_kwh) + peripheral_kwh

        clipped_setpoints = 0
        clipped_energy_kwh = 0.0
        shortfall_j = None
        if self.dispatch is None:
            cohort_grid_kwh = device_kwh
            cohort_battery_kwh = np.zeros((n_steps, n_cohorts))
            cohort_charge_kwh = np.zeros((n_steps, n_cohorts))
            cohort_soc = np.ones((n_steps, n_cohorts))
            grid_kwh = total_kwh
            battery_kwh = np.zeros((n_steps, n_sites))
            charge_kwh = np.zeros((n_steps, n_sites))
            soc = np.ones((n_steps, n_sites))
            energy_kwh_all = total_kwh
        else:
            # Idle headroom is physical: a device the routing derate shed
            # is sitting idle and can charge.
            idle_fraction = 1.0 - utilization_all
            device_j = device_kwh * units.JOULES_PER_KWH
            with tele.span("dispatch_day", calls=n_days):
                (
                    battery_j,
                    charge_j,
                    pack_soc,
                    shortfall_j,
                    _,
                    shard_manifests,
                ) = execute_dispatch(
                    self.sites,
                    self.dispatch,
                    intensity_packs,
                    device_j,
                    idle_fraction,
                    counts_day,
                    step_s,
                    self._site_starts,
                    shards=self.shards,
                    telemetry_enabled=tele.enabled,
                )
            for manifest in shard_manifests:
                tele.add_child(manifest)
            cohort_battery_kwh = battery_j / units.JOULES_PER_KWH
            cohort_charge_kwh = charge_j / units.JOULES_PER_KWH
            cohort_soc = pack_soc
            cohort_grid_kwh = device_kwh - cohort_battery_kwh
            battery_kwh = self._per_site(cohort_battery_kwh)
            charge_kwh = self._per_site(cohort_charge_kwh)
            soc = self._site_soc(
                pack_soc, self._pack_capacity_rows(counts_day, hours_per_day)
            )
            grid_kwh = total_kwh - battery_kwh
            energy_kwh_all = grid_kwh + charge_kwh
            clipped_setpoints, clipped_energy_kwh = self._clip_accounting(
                shortfall_j, hours_per_day
            )

        # Operational carbon follows the wall energy the meter saw.
        operational_g = energy_kwh_all * intensity_all

        if tele.enabled and self.dispatch is not None:
            tele.count("dispatch.clipped_setpoints", clipped_setpoints)
            tele.count("dispatch.clipped_kwh", clipped_energy_kwh)
            tele.count(
                "dispatch.fallback_pack_days",
                getattr(self.dispatch, "fallback_pack_days", 0),
            )

        if self.audit:
            from repro.telemetry.observatory.audit import audit_fleet_run

            with tele.span("audit"):
                self.audit_report = audit_fleet_run(
                    alloc=alloc_all,
                    demand=demand_all,
                    capacity_rows=self._physical_capacity_rows(
                        counts_day, hours_per_day
                    ),
                    energy_kwh=energy_kwh_all,
                    grid_kwh=grid_kwh,
                    battery_kwh=battery_kwh,
                    charge_kwh=charge_kwh,
                    total_kwh=total_kwh,
                    cohort_energy_kwh=cohort_energy_kwh,
                    cohort_grid_kwh=cohort_grid_kwh,
                    cohort_battery_kwh=cohort_battery_kwh,
                    cohort_charge_kwh=cohort_charge_kwh,
                    cohort_soc=cohort_soc,
                    min_soc=(
                        getattr(self.dispatch, "min_state_of_charge", None)
                        if self.dispatch is not None
                        else None
                    ),
                    shortfall_j=shortfall_j,
                    clipped_setpoints=clipped_setpoints,
                    clipped_energy_kwh=clipped_energy_kwh,
                    cohort_counts_day=counts_day,
                    cohort_active=cohort_active,
                    cohort_failures=cohort_failures,
                    cohort_retirements=cohort_retirements,
                    cohort_swaps_day=cohort_swaps,
                    cohort_deployed=cohort_deployed,
                    cohort_replacement_g=cohort_replacement_g,
                    cohort_swap_embodied_g=np.array(
                        [
                            units.kg_to_grams(
                                entry.device.battery.embodied_carbon_kgco2e
                            )
                            if entry.device.battery is not None
                            else 0.0
                            for _, entry in self.segments
                        ]
                    ),
                    telemetry=tele if tele.enabled else None,
                )

        return FleetReport(
            policy_name=self.policy.name,
            site_names=tuple(site.name for site in self.sites),
            hours=np.arange(n_steps, dtype=float) * HOURS_PER_STEP,
            served_rps=served,
            dropped_rps=dropped,
            operational_g=operational_g,
            intensity_g_per_kwh=intensity_all,
            days=np.arange(1, n_days + 1, dtype=float),
            active_devices=active,
            target_devices=np.array(
                [
                    sum(entry.target_size for entry in site.cohorts)
                    for site in self.sites
                ]
            ),
            replacement_carbon_g=replacement_g,
            battery_swaps=battery_swaps,
            failures=failures,
            deployed=deployed,
            step_s=step_s,
            energy_kwh=energy_kwh_all,
            grid_kwh=grid_kwh,
            battery_kwh=battery_kwh,
            charge_kwh=charge_kwh,
            soc=soc,
            cohort_labels=tuple(
                label for site in self.sites for label in site.cohort_labels()
            ),
            cohort_site_index=self._segment_site.copy(),
            cohort_target=np.array(
                [entry.target_size for _, entry in self.segments]
            ),
            cohort_served_rps=cohort_served,
            cohort_energy_kwh=cohort_energy_kwh,
            cohort_grid_kwh=cohort_grid_kwh,
            cohort_battery_kwh=cohort_battery_kwh,
            cohort_charge_kwh=cohort_charge_kwh,
            cohort_soc=cohort_soc,
            cohort_active=cohort_active,
            cohort_replacement_carbon_g=cohort_replacement_g,
            cohort_battery_swaps=cohort_swaps,
            cohort_failures=cohort_failures,
            cohort_deployed=cohort_deployed,
            clipped_setpoints=clipped_setpoints,
            clipped_energy_kwh=clipped_energy_kwh,
        )

    # -- per-day phases ----------------------------------------------------

    def _precompute_block(
        self, start_day: int, stop_day: int, hours_per_day: int, step_s: float
    ):
        """Hoisted time-indexed inputs for days ``[start_day, stop_day)``.

        Demand, per-pack intensity, and marginal CCI depend only on the hour
        index — never on live population state — so one call covers a whole
        block.  Hour timestamps and start hours are exactly representable
        integers and every series is elementwise in them, so any block size
        is bitwise-identical to the historical per-day calls.
        """
        n_cohorts = len(self.segments)
        n_hours = (stop_day - start_day) * hours_per_day
        times_s = (
            start_day * units.SECONDS_PER_DAY + np.arange(n_hours) * step_s
        )
        demand_rps = self.demand.series(n_hours, start_hour=start_day * 24.0)
        intensity = np.empty((n_hours, n_cohorts))
        marginal = np.empty((n_hours, n_cohorts))
        site_intensity: Dict[int, np.ndarray] = {}
        for j, (site, entry) in enumerate(self.segments):
            site_index = int(self._segment_site[j])
            if site_index not in site_intensity:
                site_intensity[site_index] = site.intensities_at(times_s)
            intensity[:, j] = site_intensity[site_index]
            marginal[:, j] = entry.marginal_carbon_g_for_intensity(intensity[:, j])
        return demand_rps, intensity, marginal

    def _allocate_day(
        self,
        hours_per_day: int,
        step_s: float,
        demand_rps: np.ndarray,
        intensity: np.ndarray,
        marginal: np.ndarray,
    ) -> np.ndarray:
        """Phase 1: route one day of hourly demand across the live segments.

        Only the capacity matrix is computed here — it reads the *live*
        (churn-following) cohort populations, which is exactly why this
        phase cannot hoist with the block precompute that feeds it.
        """
        n_cohorts = len(self.segments)
        capacity = np.empty((hours_per_day, n_cohorts))
        for j, (_, entry) in enumerate(self.segments):
            capacity[:, j] = self.policy.cohort_capacity_rps(entry)
        alloc = self.policy.allocate(demand_rps, capacity, intensity, marginal)
        self._validate_allocation(alloc, demand_rps, capacity)
        if self.telemetry.enabled and self.policy.wear_derate > 0:
            # Request capacity the wear derate withheld from routing today
            # (rps x seconds = requests) — the shedding that is otherwise
            # invisible in the report's served/dropped series.
            physical = sum(entry.capacity_rps for _, entry in self.segments)
            withheld_rps = max(0.0, physical - float(capacity[0].sum()))
            self.telemetry.count(
                "routing.wear_shed_requests", withheld_rps * hours_per_day * step_s
            )
        return alloc

    def _cohort_energy_kwh(
        self,
        alloc: np.ndarray,
        counts_day: np.ndarray,
        hours_per_day: int,
        step_s: float,
    ) -> np.ndarray:
        """Device-only energy (kWh) each cohort needs per hour, whole run.

        The vectorized twin of per-day
        :meth:`~repro.fleet.sites.SiteCohort.device_power_w` calls: idle
        floor follows the recorded day-start counts, each served request
        adds its dynamic energy.  Same per-element expression, so bitwise-
        identical to the historical per-day column loop.
        """
        if np.any(alloc < 0):
            raise ValueError("served rate must be non-negative")
        idle_w = np.array([entry.idle_power_w for _, entry in self.segments])
        dynamic_j = np.array(
            [entry.dynamic_energy_per_request_j for _, entry in self.segments]
        )
        counts_rows = np.repeat(
            counts_day.astype(float), hours_per_day, axis=0
        )
        power_w = counts_rows * idle_w[None, :] + alloc * dynamic_j[None, :]
        return power_w * step_s / units.JOULES_PER_KWH

    def _physical_capacity_rows(
        self, counts_day: np.ndarray, hours_per_day: int
    ) -> np.ndarray:
        """Per-``(hour, segment)`` physical request capacity (requests/s).

        Rebuilt from the recorded day-start counts — the same counts the
        allocation saw — so the audit's feasibility check compares against
        the capacity that actually applied, not today's live population.
        """
        n_days = counts_day.shape[0]
        capacity_day = np.empty((n_days, len(self.segments)))
        for j, (_, entry) in enumerate(self.segments):
            for day in range(n_days):
                capacity_day[day, j] = entry.capacity_rps_at(
                    int(counts_day[day, j])
                )
        return np.repeat(capacity_day, hours_per_day, axis=0)

    def _pack_capacity_rows(
        self, counts_day: np.ndarray, hours_per_day: int
    ) -> np.ndarray:
        """Per-``(hour, pack)`` battery capacity from the recorded day counts."""
        n_days = counts_day.shape[0]
        capacity_day = np.empty((n_days, len(self.segments)))
        for j, (_, entry) in enumerate(self.segments):
            for day in range(n_days):
                capacity_day[day, j] = entry.battery_capacity_j_at(
                    int(counts_day[day, j])
                )
        return np.repeat(capacity_day, hours_per_day, axis=0)

    def _clip_accounting(
        self, shortfall_j: np.ndarray, hours_per_day: int
    ) -> Tuple[int, float]:
        """Clipped-setpoint count and clipped energy (kWh) from the replay.

        *Clipped setpoints* are hours where the policy asked a pack to
        discharge but the ledger's physics (SoC floor, or the forced
        recharge below it) could not deliver the full device energy.  The
        planner gets no signal when its plan is infeasible — the clip count
        and energy are that signal, surfaced via
        :class:`~repro.fleet.reporting.FleetReport` and the telemetry
        counters.  Accumulation replicates the historical per-day loop
        exactly: masked joule sums per hot hour in hour order, one kWh
        conversion per day in day order.
        """
        clip_tol_j = 1e-9
        infeasible = shortfall_j > clip_tol_j
        hot_rows = np.nonzero(infeasible.any(axis=1))[0]
        n_days = shortfall_j.shape[0] // hours_per_day
        day_counts = [0] * n_days
        day_joules = [0.0] * n_days
        for row in hot_rows:
            day = int(row) // hours_per_day
            mask = infeasible[row]
            day_counts[day] += int(np.count_nonzero(mask))
            day_joules[day] += float(shortfall_j[row][mask].sum())
        clipped = 0
        clipped_kwh = 0.0
        for day in range(n_days):
            clipped += day_counts[day]
            clipped_kwh += day_joules[day] / units.JOULES_PER_KWH
        return clipped, clipped_kwh

    def _site_soc(
        self, pack_soc: np.ndarray, capacity_rows: np.ndarray
    ) -> np.ndarray:
        """Site-level SoC series: capacity-weighted mean over the site's packs.

        Single-pack sites pass their pack's fraction through untouched (the
        historical per-site series, bit for bit); mixed sites weight by the
        per-row pack capacities via segment-wise ``np.add.reduceat``,
        falling back to a plain mean on rows where no pack holds energy.
        ``capacity_rows`` is the ``(n_steps, n_packs)`` capacity matrix from
        :meth:`_pack_capacity_rows`.
        """
        n_packs = pack_soc.shape[1]
        sizes = np.diff(np.append(self._site_starts, n_packs))
        weighted = np.add.reduceat(
            pack_soc * capacity_rows, self._site_starts, axis=-1
        )
        totals = np.add.reduceat(capacity_rows, self._site_starts, axis=-1)
        plain = np.add.reduceat(pack_soc, self._site_starts, axis=-1)
        with np.errstate(invalid="ignore", divide="ignore"):
            out = np.where(
                totals > 0, weighted / totals, plain / sizes[None, :]
            )
        single = sizes == 1
        if np.any(single):
            out[:, single] = pack_soc[:, self._site_starts[single]]
        return out

    def _site_soc_loop(
        self, pack_soc: np.ndarray, capacity_rows: np.ndarray
    ) -> np.ndarray:
        """Reference per-site loop for :meth:`_site_soc` (kept for tests).

        Accumulates each site's weighted sum left to right — the same
        reduction order ``np.add.reduceat`` uses — so the vectorized path
        can be pinned bitwise against it on mixed and single-pack sites.
        """
        n_sites = len(self.sites)
        n_packs = pack_soc.shape[1]
        out = np.empty((pack_soc.shape[0], n_sites))
        for site_index in range(n_sites):
            start = int(self._site_starts[site_index])
            stop = (
                int(self._site_starts[site_index + 1])
                if site_index + 1 < n_sites
                else n_packs
            )
            if stop - start == 1:
                out[:, site_index] = pack_soc[:, start]
                continue
            weighted = pack_soc[:, start] * capacity_rows[:, start]
            total = capacity_rows[:, start].copy()
            plain = pack_soc[:, start].copy()
            for j in range(start + 1, stop):
                weighted = weighted + pack_soc[:, j] * capacity_rows[:, j]
                total = total + capacity_rows[:, j]
                plain = plain + pack_soc[:, j]
            with np.errstate(invalid="ignore", divide="ignore"):
                out[:, site_index] = np.where(
                    total > 0, weighted / total, plain / (stop - start)
                )
        return out

    def _physical_utilization(self, alloc: np.ndarray) -> np.ndarray:
        """Per-``(hour, segment)`` utilisation against *non-derated* capacity.

        Battery cycling and charge headroom both follow what the devices
        physically do, so utilisation is measured against each cohort's
        :attr:`~repro.fleet.sites.SiteCohort.capacity_rps` regardless of any
        routing-level wear derate.
        """
        physical = np.array([entry.capacity_rps for _, entry in self.segments])
        with np.errstate(invalid="ignore", divide="ignore"):
            util = np.where(physical > 0, alloc / physical, 0.0)
        return np.clip(util, 0.0, 1.0)

    def _step_population(self, utilization: np.ndarray) -> Dict[str, np.ndarray]:
        """Phase 4: one day of churn per cohort at its realised utilisation.

        Takes the day's ``(hours, segment)`` utilisation matrix directly so
        the caller can share one :meth:`_physical_utilization` pass between
        churn and the recorded dispatch idle headroom.
        """
        n_cohorts = len(self.segments)
        out = {
            "active": np.zeros(n_cohorts, dtype=np.int64),
            "replacement_carbon_g": np.zeros(n_cohorts),
            "battery_swaps": np.zeros(n_cohorts, dtype=np.int64),
            "failures": np.zeros(n_cohorts, dtype=np.int64),
            "deployed": np.zeros(n_cohorts, dtype=np.int64),
            "retirements": np.zeros(n_cohorts, dtype=np.int64),
        }
        for j, (_, entry) in enumerate(self.segments):
            mean_util = float(np.mean(utilization[:, j]))
            step = entry.cohort.step(1.0, utilization=mean_util)
            out["active"][j] = step.active
            out["replacement_carbon_g"][j] = step.replacement_carbon_g
            out["battery_swaps"][j] = step.battery_swaps
            out["failures"][j] = step.failures
            out["deployed"][j] = step.deployed
            out["retirements"][j] = step.retirements
        return out

    @staticmethod
    def _validate_allocation(
        alloc: np.ndarray, demand: np.ndarray, capacity: np.ndarray
    ) -> None:
        tol = 1e-6
        if np.any(alloc < -tol):
            raise ValueError("policy produced a negative allocation")
        if np.any(alloc > capacity + tol):
            raise ValueError("policy allocated beyond segment capacity")
        if np.any(alloc.sum(axis=1) > demand * (1 + tol) + tol):
            raise ValueError("policy served more than the offered demand")


def run_policy_comparison(
    site_builder,
    policies: Sequence[RoutingPolicy],
    demand: DiurnalDemand,
    n_days: int,
) -> Dict[str, FleetReport]:
    """Run the same scenario under several policies with identical fleets.

    ``site_builder`` is a zero-argument callable returning a *fresh* list of
    sites — each policy must see an identical, independently-seeded fleet,
    otherwise population RNG state would leak across runs and the comparison
    would not be apples-to-apples.
    """
    reports: Dict[str, FleetReport] = {}
    for policy in policies:
        simulation = FleetSimulation(site_builder(), policy, demand)
        reports[policy.name] = simulation.run(n_days)
    return reports


# ---------------------------------------------------------------------------
# DES-backed latency-aware path
# ---------------------------------------------------------------------------


def _effective_device_slots(policy: RoutingPolicy, site: FleetSite) -> int:
    """Concurrent request slots the DES path offers for one site.

    The wear-derated capacity divided back into whole devices; rounded (not
    truncated) so the float division ``active * rate * 1.0 / rate`` cannot
    drop a device to representation error when the derate is off.  Mixed
    sites divide by the target-weighted mean per-device rate, so the slot
    count still approximates the live device count.
    """
    return max(
        1,
        int(
            round(
                policy.site_capacity_rps(site) / site.nominal_requests_per_device_s
            )
        ),
    )


def simulate_latency_aware(
    sites: Sequence[FleetSite],
    policy: RoutingPolicy,
    demand_rps: float,
    duration_s: float = 60.0,
    seed: int = 0,
    queue_penalty_g: float = 5e-6,
    service_distribution: str = "deterministic",
) -> Tuple[LatencySummary, Dict[str, int]]:
    """Serve a Poisson request stream through the sites on the DES engine.

    Where the vectorized path treats each hour as a fluid allocation, this
    path models individual requests: exponential inter-arrivals, per-site
    FIFO service at ``requests_per_device_s`` per device, and the site's
    network RTT added to every response.  Each arrival is routed by the
    policy's :meth:`~RoutingPolicy.request_key` (grams per request) plus
    ``queue_penalty_g`` grams per already-queued request, so carbon-greedy
    policies shed load to the next-cleanest site once the clean site backs
    up.  The default penalty is on the order of a phone-cloudlet marginal
    (a few 1e-6 g/request), so spill happens after a handful of queued
    requests rather than after a multi-second backlog.  Policies whose key
    is ``None`` (round-robin) rotate: each request goes to the site with
    the lowest served-count-to-capacity ratio.

    ``service_distribution`` selects how per-request service times are
    drawn (:data:`SERVICE_DISTRIBUTIONS`): the ``"deterministic"`` default
    keeps the fixed ``1/requests_per_device_s``; ``"exponential"`` and
    ``"lognormal"`` draw from a seeded stream with the same mean, the
    lognormal shaped by the microservice simulator's calibrated
    variability — so the probe's tail percentiles reflect per-request
    jitter, not just queueing.

    Returns the overall latency summary and the per-site served counts.
    """
    if demand_rps <= 0:
        raise ValueError("demand must be positive")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if queue_penalty_g < 0:
        raise ValueError("queue penalty must be non-negative")
    if service_distribution not in SERVICE_DISTRIBUTIONS:
        known = ", ".join(SERVICE_DISTRIBUTIONS)
        raise ValueError(
            f"unknown service distribution {service_distribution!r}; "
            f"expected one of: {known}"
        )
    simulator = Simulator()
    streams = RandomStreams(seed=seed)
    recorder = LatencyRecorder()
    served_by_site = {site.name: 0 for site in sites}
    routed_by_site = {site.name: 0 for site in sites}

    from repro.simulation.resources import Resource

    # The DES path sees the same (wear-derated) capacity the hourly path
    # routes against: a policy shedding load from a worn cohort also offers
    # fewer concurrent request slots here.
    effective_devices = {
        site.name: _effective_device_slots(policy, site) for site in sites
    }
    pools = {
        site.name: Resource(
            simulator, capacity=effective_devices[site.name], name=site.name
        )
        for site in sites
    }
    service_s = {
        site.name: 1.0 / site.nominal_requests_per_device_s for site in sites
    }

    # The lognormal factor stream has mean exp(sigma^2/2); the correction
    # keeps the drawn mean at 1/rate so distributions differ in shape only.
    lognormal_mean_correction = float(np.exp(-0.5 * SERVICE_TIME_SIGMA**2))

    def draw_service_s(site: FleetSite) -> float:
        mean = service_s[site.name]
        if service_distribution == "exponential":
            return streams.exponential(f"service@{site.name}", mean)
        if service_distribution == "lognormal":
            factor = streams.lognormal_factor(
                f"service@{site.name}", SERVICE_TIME_SIGMA
            )
            return mean * factor * lognormal_mean_correction
        return mean

    def route(now_s: float) -> FleetSite:
        keys = [policy.request_key(site, now_s) for site in sites]
        if any(key is None for key in keys):
            # Capacity-weighted rotation: send the request to the site that
            # has served the smallest share of its capacity so far.
            shares = [
                routed_by_site[site.name]
                / (
                    effective_devices[site.name]
                    * site.nominal_requests_per_device_s
                )
                for site in sites
            ]
            best = int(np.argmin(shares))
        else:
            penalized = [
                key + pools[site.name].queue_length * queue_penalty_g
                for key, site in zip(keys, sites)
            ]
            best = int(np.argmin(penalized))
        routed_by_site[sites[best].name] += 1
        return sites[best]

    def handle(site: FleetSite, start_s: float):
        pool = pools[site.name]
        yield pool.acquire()
        yield Timeout(draw_service_s(site))
        pool.release()
        yield Timeout(site.network_rtt_s)
        recorder.record("request", simulator.now - start_s)
        served_by_site[site.name] += 1

    spawned = {"count": 0}

    def arrivals():
        while simulator.now < duration_s:
            yield Timeout(streams.exponential("arrivals", 1.0 / demand_rps))
            if simulator.now >= duration_s:
                break
            site = route(simulator.now)
            spawned["count"] += 1
            simulator.spawn(handle(site, simulator.now), name=f"req@{site.name}")

    simulator.spawn(arrivals(), name="arrivals")
    simulator.run()
    summaries = summarize(recorder, offered={"request": spawned["count"]})
    if "request" not in summaries:
        raise RuntimeError("no requests completed; increase duration or demand")
    return summaries["request"], served_by_site
