"""Carbon accounting primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.core.carbon import (
    CarbonComponents,
    CarbonLedger,
    LTE_ENERGY_INTENSITY_J_PER_BYTE,
    WIFI_ENERGY_INTENSITY_J_PER_BYTE,
    networking_carbon_g,
    operational_carbon_g,
)


class TestOperationalCarbon:
    def test_one_kw_for_one_hour(self):
        grams = operational_carbon_g(1_000.0, 3_600.0, 257.0)
        assert grams == pytest.approx(257.0)

    def test_zero_power_or_duration(self):
        assert operational_carbon_g(0.0, 3_600.0, 257.0) == 0.0
        assert operational_carbon_g(100.0, 0.0, 257.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            operational_carbon_g(-1.0, 10.0, 257.0)
        with pytest.raises(ValueError):
            operational_carbon_g(1.0, -10.0, 257.0)
        with pytest.raises(ValueError):
            operational_carbon_g(1.0, 10.0, -257.0)

    @given(
        st.floats(min_value=0.0, max_value=1e4),
        st.floats(min_value=0.0, max_value=1e8),
        st.floats(min_value=0.0, max_value=1_000.0),
    )
    def test_linear_in_intensity(self, power, duration, intensity):
        single = operational_carbon_g(power, duration, intensity)
        double = operational_carbon_g(power, duration, 2 * intensity)
        assert double == pytest.approx(2 * single, rel=1e-9, abs=1e-9)


class TestNetworkingCarbon:
    def test_wifi_vs_lte_energy_intensity(self):
        wifi = networking_carbon_g(1e6, WIFI_ENERGY_INTENSITY_J_PER_BYTE, 3_600.0, 257.0)
        lte = networking_carbon_g(1e6, LTE_ENERGY_INTENSITY_J_PER_BYTE, 3_600.0, 257.0)
        assert lte == pytest.approx(wifi * 11.0 / 5.0)

    def test_magnitude(self):
        # 0.1 Gbps over WiFi for a year at the California mean.
        rate = 0.1e9 / 8
        grams = networking_carbon_g(rate, 5e-6, 365 * 86_400.0, 257.0)
        assert grams == pytest.approx(140_700, rel=0.05)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            networking_carbon_g(-1.0, 5e-6, 10.0, 257.0)


class TestCarbonComponents:
    def test_totals(self):
        components = CarbonComponents(embodied_g=1_000.0, operational_g=500.0, networking_g=50.0)
        assert components.total_g == pytest.approx(1_550.0)
        assert components.total_kg == pytest.approx(1.55)

    def test_addition_and_scaling(self):
        a = CarbonComponents(100.0, 200.0, 10.0)
        b = CarbonComponents(1.0, 2.0, 3.0)
        combined = a + b
        assert combined.embodied_g == 101.0
        assert combined.networking_g == 13.0
        scaled = a.scaled(3.0)
        assert scaled.operational_g == pytest.approx(600.0)

    def test_pue_applies_to_operational_terms_only(self):
        components = CarbonComponents(100.0, 200.0, 10.0)
        adjusted = components.with_pue(1.5)
        assert adjusted.embodied_g == 100.0
        assert adjusted.operational_g == pytest.approx(300.0)
        assert adjusted.networking_g == pytest.approx(15.0)
        with pytest.raises(ValueError):
            components.with_pue(0.9)

    def test_rejects_negative_components(self):
        with pytest.raises(ValueError):
            CarbonComponents(embodied_g=-1.0)


class TestCarbonLedger:
    def test_embodied_entries_in_kg(self):
        ledger = CarbonLedger()
        ledger.add_embodied("batteries", 2.0, count=10)
        assert ledger.total_g() == pytest.approx(20_000.0)

    def test_operational_and_networking_entries(self):
        ledger = CarbonLedger()
        ledger.add_operational("device", 1_000.0, 3_600.0, 257.0)
        ledger.add_networking("uplink", 1e6, 5e-6, 3_600.0, 257.0)
        components = ledger.components()
        assert components.operational_g == pytest.approx(257.0)
        assert components.networking_g > 0
        assert components.embodied_g == 0.0

    def test_by_label_groups_entries(self):
        ledger = CarbonLedger()
        ledger.add_embodied("fan", 9.3)
        ledger.add_embodied("fan", 9.3)
        ledger.add_operational_grams("fan", 100.0)
        assert ledger.by_label()["fan"] == pytest.approx(18_700.0)

    def test_merged(self):
        a = CarbonLedger()
        a.add_embodied("x", 1.0)
        b = CarbonLedger()
        b.add_operational_grams("y", 5.0)
        merged = a.merged(b)
        assert merged.total_g() == pytest.approx(1_005.0)
        assert len(merged.entries) == 2

    def test_invalid_inputs(self):
        ledger = CarbonLedger()
        with pytest.raises(ValueError):
            ledger.add_embodied("x", -1.0)
        with pytest.raises(ValueError):
            ledger.add_operational_grams("x", -1.0)
