"""Declarative, serializable scenario specifications.

A :class:`ScenarioSpec` is a nested tree of frozen dataclasses describing a
complete fleet experiment — sites (device mix, grid-trace source, churn
policy), request demand, routing policy, charging policy, economics, horizon
and seed — with no live objects inside, so every scenario is *data*:

* :meth:`ScenarioSpec.to_dict` / :meth:`ScenarioSpec.from_dict` and the JSON
  twins round-trip losslessly, and ``from_dict`` rejects unknown fields and
  ill-typed values with a :class:`ScenarioValidationError` naming the exact
  dotted path of the offending field;
* :meth:`ScenarioSpec.with_overrides` applies ``dotted.path=value`` overrides
  (list indices included, e.g. ``sites.0.devices.count``), which is what the
  CLI's ``--set`` flag feeds;
* the spec resolves against the live subsystems only inside
  :class:`~repro.scenarios.runner.ScenarioRunner`, so specs can be built,
  stored, diffed, and shipped without touching a simulator.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.devices.power import FULL_LOAD, IDLE, LIGHT_MEDIUM, LoadProfile
from repro.economics.cost import CALIFORNIA_ELECTRICITY_USD_PER_KWH, FleetCostModel
from repro.fleet.churn import CHURN_SAMPLERS
from repro.fleet.population import FailureModel, IntakeStream, ReplacementPolicy
from repro.fleet.scheduler import SERVICE_DISTRIBUTIONS, DiurnalDemand
from repro.fleet.sites import DEFAULT_REQUESTS_PER_DEVICE_S, REGIONAL_GENERATORS
from repro.forecast.models import FORECAST_MODELS

#: Grid-trace source kinds a :class:`TraceSpec` may name.
TRACE_KINDS = ("regional", "csv", "constant")

#: Charging-policy names a :class:`ChargingSpec` may name.
CHARGING_POLICIES = ("none", "smart")

#: How the charging layer couples into the fleet simulation.
CHARGING_COUPLINGS = ("none", "estimate", "dispatch")

#: Forecast-model names a :class:`ForecastSpec` may name (``"none"`` disables
#: forecasting; the rest resolve through
#: :func:`~repro.forecast.models.forecast_model_by_name`, so the two
#: registries can never drift).
FORECAST_MODEL_NAMES = ("none",) + tuple(sorted(FORECAST_MODELS))

# SERVICE_DISTRIBUTIONS (imported above) is re-exported here: the scheduler
# defines the probe's distributions, spec validation just names them.

#: Name -> :class:`~repro.devices.power.LoadProfile` for every profile a spec
#: may name.  The single source of truth: validation (here) and resolution
#: (the runner) both read it, so the two can never drift.
LOAD_PROFILE_REGISTRY: Dict[str, LoadProfile] = {
    profile.name: profile for profile in (LIGHT_MEDIUM, FULL_LOAD, IDLE)
}

#: Load-profile names resolvable by the runner.
LOAD_PROFILES = tuple(LOAD_PROFILE_REGISTRY)


class ScenarioValidationError(ValueError):
    """A scenario spec is malformed; the message names the offending field."""


# ---------------------------------------------------------------------------
# Leaf specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TraceSpec:
    """Where a site's carbon-intensity time series comes from.

    ``kind`` selects the source: ``"regional"`` generates ``n_days`` from
    one of the synthetic regional presets (:data:`~repro.fleet.sites.REGIONAL_GENERATORS`);
    ``"csv"`` loads a measured export via
    :meth:`~repro.grid.traces.GridTrace.from_csv`; ``"constant"`` builds a
    flat trace at ``intensity_g_per_kwh``.  Long scenarios wrap the trace
    end-to-end, so a month of data serves a simulated year.

    A relative ``csv_path`` that does not exist in the working directory is
    resolved against the package's bundled data directory
    (:data:`~repro.grid.traces.DATA_DIR`), so specs referencing bundled
    samples (``csv_path="caiso_sample.csv"``) stay portable when serialized
    and shipped to another machine.
    """

    kind: str = "regional"
    region: str = "caiso-like"
    n_days: int = 30
    csv_path: Optional[str] = None
    time_col: str = "timestamp"
    intensity_col: str = "intensity_gco2_per_kwh"
    intensity_g_per_kwh: float = 250.0

    def __post_init__(self) -> None:
        if self.kind not in TRACE_KINDS:
            raise ScenarioValidationError(
                f"kind must be one of {', '.join(TRACE_KINDS)}; got {self.kind!r}"
            )
        if self.kind == "regional" and self.region not in REGIONAL_GENERATORS:
            known = ", ".join(sorted(REGIONAL_GENERATORS))
            raise ScenarioValidationError(
                f"region must be one of {known}; got {self.region!r}"
            )
        if self.kind == "csv" and not self.csv_path:
            raise ScenarioValidationError("csv_path is required when kind='csv'")
        if self.n_days <= 0:
            raise ScenarioValidationError("n_days must be positive")
        if self.intensity_g_per_kwh < 0:
            raise ScenarioValidationError("intensity_g_per_kwh must be non-negative")


@dataclass(frozen=True)
class DeviceMixSpec:
    """The device population one site deploys."""

    device: str = "Pixel 3A"
    count: int = 100
    load_profile: str = LIGHT_MEDIUM.name
    # Defaults below mirror the subsystem defaults by reference (dataclass
    # defaults are class attributes), so spec-driven and direct-model runs
    # can never drift apart.
    requests_per_device_s: float = DEFAULT_REQUESTS_PER_DEVICE_S

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ScenarioValidationError("count must be positive")
        if self.load_profile not in LOAD_PROFILES:
            raise ScenarioValidationError(
                f"load_profile must be one of {', '.join(LOAD_PROFILES)}; "
                f"got {self.load_profile!r}"
            )
        if self.requests_per_device_s <= 0:
            raise ScenarioValidationError("requests_per_device_s must be positive")


@dataclass(frozen=True)
class ChurnSpec:
    """Population-churn policy: failures, battery swaps, intake.

    ``intake_per_day=None`` sizes the intake stream at 1.25x the analytic
    steady-state replacement rate (as :func:`~repro.fleet.sites.phone_site`
    does); an explicit rate models supply-constrained or oversupplied
    junkyards.  ``initial_spares=None`` likewise defaults to a small pool
    proportional to the site size.

    ``sampler`` selects the churn engine: ``"device"`` (the bitwise-stable
    per-device reference) or ``"bucket"`` (deploy-day cohort buckets with
    one binomial draw per bucket — distributionally equivalent, O(days)
    instead of O(devices) per step).  The choice changes the RNG stream,
    so unlike the :class:`ExecutionSpec` knobs it is part of the spec hash.
    """

    swap_batteries: bool = ReplacementPolicy.swap_batteries
    max_battery_swaps: int = ReplacementPolicy.max_battery_swaps
    annual_failure_rate: float = FailureModel.annual_rate
    age_acceleration_per_year: float = FailureModel.age_acceleration_per_year
    intake_per_day: Optional[float] = None
    initial_spares: Optional[int] = None
    poisson_intake: bool = IntakeStream.poisson
    sampler: str = "device"

    def __post_init__(self) -> None:
        if self.sampler not in CHURN_SAMPLERS:
            raise ScenarioValidationError(
                f"sampler must be one of {', '.join(CHURN_SAMPLERS)}; "
                f"got {self.sampler!r}"
            )
        if self.max_battery_swaps < 0:
            raise ScenarioValidationError("max_battery_swaps must be non-negative")
        if self.annual_failure_rate < 0 or self.age_acceleration_per_year < 0:
            raise ScenarioValidationError("failure rates must be non-negative")
        if self.intake_per_day is not None and self.intake_per_day < 0:
            raise ScenarioValidationError("intake_per_day must be non-negative")
        if self.initial_spares is not None and self.initial_spares < 0:
            raise ScenarioValidationError("initial_spares must be non-negative")


@dataclass(frozen=True)
class SiteSpec:
    """One cloudlet location: its grid, device cohorts, churn, and network.

    A site deploys one or more typed device cohorts.  The historical single
    ``devices`` field stays the one-cohort spelling; a *mixed* site lists
    its per-type populations in ``cohorts`` instead (one
    :class:`DeviceMixSpec` each — a junkyard rack of Pixel 3As next to
    Nexus 4s is one site, not two co-located ones).  When ``cohorts`` is
    non-empty it is the complete device description and ``devices`` is
    ignored; the ``churn`` policy applies to every cohort (each with its own
    independently seeded stream), with per-cohort target sizes from the
    cohort counts.  Dotted-path overrides reach into the list as
    ``sites.0.cohorts.1.count``.
    """

    name: str
    trace: TraceSpec = field(default_factory=TraceSpec)
    devices: DeviceMixSpec = field(default_factory=DeviceMixSpec)
    churn: ChurnSpec = field(default_factory=ChurnSpec)
    network_rtt_s: float = 0.010
    cohorts: Tuple[DeviceMixSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioValidationError("name must be non-empty")
        if self.network_rtt_s < 0:
            raise ScenarioValidationError("network_rtt_s must be non-negative")
        if not isinstance(self.cohorts, tuple):
            object.__setattr__(self, "cohorts", tuple(self.cohorts))

    @property
    def device_mixes(self) -> Tuple[DeviceMixSpec, ...]:
        """The site's device cohorts: ``cohorts`` when given, else ``devices``."""
        return self.cohorts if self.cohorts else (self.devices,)

    @property
    def total_devices(self) -> int:
        """Target device count summed across the site's cohorts."""
        return sum(mix.count for mix in self.device_mixes)


@dataclass(frozen=True)
class DemandSpec:
    """Fleet-wide request demand (a diurnal + weekly deterministic model).

    ``mean_rps`` pins the mean demand explicitly; when ``None`` the runner
    derives it as ``fraction_of_capacity`` times the fleet's nominal capacity
    (sum over sites of ``count * requests_per_device_s``).

    ``service_distribution`` selects how the DES latency probe draws each
    request's service time: ``"deterministic"`` (the default, exactly
    ``1/requests_per_device_s``), ``"exponential"``, or ``"lognormal"`` —
    the stochastic shapes keep the same mean, with the lognormal's spread
    taken from the microservice simulator's calibrated per-request
    variability (:data:`repro.microservices.calibration.SERVICE_TIME_SIGMA`).
    """

    mean_rps: Optional[float] = None
    fraction_of_capacity: float = 0.45
    daily_amplitude: float = DiurnalDemand.daily_amplitude
    peak_hour: float = DiurnalDemand.peak_hour
    weekly_amplitude: float = DiurnalDemand.weekly_amplitude
    service_distribution: str = "deterministic"

    def __post_init__(self) -> None:
        if self.mean_rps is not None and self.mean_rps <= 0:
            raise ScenarioValidationError("mean_rps must be positive")
        if not 0.0 < self.fraction_of_capacity <= 1.5:
            raise ScenarioValidationError("fraction_of_capacity must be in (0, 1.5]")
        if not 0.0 <= self.daily_amplitude < 1.0:
            raise ScenarioValidationError("daily_amplitude must be within [0, 1)")
        if not 0.0 <= self.weekly_amplitude < 1.0:
            raise ScenarioValidationError("weekly_amplitude must be within [0, 1)")
        if not 0.0 <= self.peak_hour < 24.0:
            raise ScenarioValidationError("peak_hour must be within [0, 24)")
        if self.service_distribution not in SERVICE_DISTRIBUTIONS:
            raise ScenarioValidationError(
                f"service_distribution must be one of "
                f"{', '.join(SERVICE_DISTRIBUTIONS)}; "
                f"got {self.service_distribution!r}"
            )


@dataclass(frozen=True)
class RoutingSpec:
    """Request-routing policy plus the optional DES latency probe.

    ``latency_probe_s`` seconds of per-request discrete-event simulation run
    after the fluid simulation (0 disables the probe);
    ``latency_demand_fraction`` scales the probe's Poisson arrival rate
    relative to the fleet's live capacity.
    """

    policy: str = "marginal-cci"
    latency_probe_s: float = 5.0
    latency_demand_fraction: float = 0.5
    queue_penalty_g: float = 5e-6
    #: Battery-aware load shedding: scale each site's effective capacity by
    #: ``1 - wear_derate * mean_battery_wear`` of its cohort (0 disables).
    wear_derate: float = 0.0

    def __post_init__(self) -> None:
        if not self.policy:
            raise ScenarioValidationError("policy must be non-empty")
        if self.latency_probe_s < 0:
            raise ScenarioValidationError("latency_probe_s must be non-negative")
        if not 0.0 < self.latency_demand_fraction <= 1.5:
            raise ScenarioValidationError(
                "latency_demand_fraction must be in (0, 1.5]"
            )
        if self.queue_penalty_g < 0:
            raise ScenarioValidationError("queue_penalty_g must be non-negative")
        if not 0.0 <= self.wear_derate <= 1.0:
            raise ScenarioValidationError("wear_derate must be within [0, 1]")


@dataclass(frozen=True)
class ChargingSpec:
    """Smart-charging coupling: UPS-as-carbon-buffer, estimated or realised.

    ``coupling`` selects how the charging layer meets the fleet simulation:

    * ``"none"`` — batteries stay full; no charging study runs;
    * ``"estimate"`` — the paper's detached per-device study (threshold at
      the previous day's P-th intensity percentile) runs per site and the
      fractional savings are *reported* as headroom, not folded into the
      fleet ledger;
    * ``"dispatch"`` — the coupled energy-dispatch core: each site carries a
      battery state-of-charge ledger, clean hours charge the packs from idle
      headroom, dirty hours serve device load from the packs, and the
      reported savings are *realised* in the operational-carbon series.

    ``coupling`` is the sole switch — ``coupling="none"`` always means the
    decoupled baseline, even when ``policy="smart"`` names the heuristic, so
    ``--set charging.coupling=none`` alone disables the battery layer.  A
    live coupling with ``policy="none"`` is contradictory (a coupling needs
    a charging heuristic) and implies ``policy="smart"``.  ``policy`` names
    *which* heuristic the coupling applies; ``"smart"`` (the paper's
    percentile threshold) is currently the only live choice, so the field
    exists for forward compatibility with other
    :class:`~repro.charging.smart_charging.ChargingPolicy` heuristics.
    """

    policy: str = "none"
    min_state_of_charge: float = 0.25
    coupling: str = "none"

    def __post_init__(self) -> None:
        if self.policy not in CHARGING_POLICIES:
            raise ScenarioValidationError(
                f"policy must be one of {', '.join(CHARGING_POLICIES)}; "
                f"got {self.policy!r}"
            )
        if self.coupling not in CHARGING_COUPLINGS:
            raise ScenarioValidationError(
                f"coupling must be one of {', '.join(CHARGING_COUPLINGS)}; "
                f"got {self.coupling!r}"
            )
        if not 0.0 <= self.min_state_of_charge < 1.0:
            raise ScenarioValidationError("min_state_of_charge must be within [0, 1)")
        if self.coupling != "none" and self.policy == "none":
            object.__setattr__(self, "policy", "smart")


@dataclass(frozen=True)
class ForecastSpec:
    """Carbon-intensity forecasting for the lookahead dispatch.

    ``model`` selects the forecaster feeding
    :class:`~repro.fleet.dispatch.ForecastDispatch` (see
    :mod:`repro.forecast.models`): ``"none"`` keeps the previous-day
    percentile heuristic (:class:`~repro.fleet.dispatch.CarbonBufferDispatch`),
    ``"perfect"`` the oracle, ``"persistence"`` yesterday-repeats,
    ``"noisy"`` the oracle degraded by multiplicative lognormal noise of
    ``noise_sigma`` (seeded from the scenario seed), and ``"csv"`` a
    measured day-ahead export read from ``csv_path`` (resolved against the
    bundled data directory when a bare filename, exactly like
    ``trace.csv_path``).  ``horizon_h`` is the lookahead window the planner
    ranks and ``refresh_h`` how often it re-plans (receding horizon); both
    in hours.

    A live forecast only acts through the coupled battery dispatch, so
    ``model != "none"`` requires ``charging.coupling == "dispatch"`` — the
    spec validation enforces the pairing rather than silently ignoring the
    forecast.
    """

    model: str = "none"
    horizon_h: int = 24
    noise_sigma: float = 0.0
    refresh_h: int = 24
    csv_path: Optional[str] = None
    time_col: str = "timestamp"
    intensity_col: str = "intensity_gco2_per_kwh"

    def __post_init__(self) -> None:
        if self.model not in FORECAST_MODEL_NAMES:
            raise ScenarioValidationError(
                f"model must be one of {', '.join(FORECAST_MODEL_NAMES)}; "
                f"got {self.model!r}"
            )
        if self.model == "csv" and not self.csv_path:
            raise ScenarioValidationError("csv_path is required when model='csv'")
        if self.horizon_h < 1:
            raise ScenarioValidationError("horizon_h must be >= 1")
        if not 1 <= self.refresh_h <= self.horizon_h:
            raise ScenarioValidationError(
                f"refresh_h must be within [1, horizon_h={self.horizon_h}]"
            )
        if self.noise_sigma < 0:
            raise ScenarioValidationError("noise_sigma must be non-negative")


@dataclass(frozen=True)
class EconomicsSpec:
    """Dollar-cost model parameters (see :class:`~repro.economics.FleetCostModel`)."""

    enabled: bool = True
    electricity_usd_per_kwh: float = CALIFORNIA_ELECTRICITY_USD_PER_KWH
    battery_replacement_usd: float = FleetCostModel.battery_replacement_usd
    battery_swap_labor_min: float = FleetCostModel.battery_swap_labor_min
    labor_usd_per_hour: float = FleetCostModel.labor_usd_per_hour
    intake_acquisition_usd: Optional[float] = None

    def __post_init__(self) -> None:
        for name in (
            "electricity_usd_per_kwh",
            "battery_replacement_usd",
            "battery_swap_labor_min",
            "labor_usd_per_hour",
        ):
            if getattr(self, name) < 0:
                raise ScenarioValidationError(f"{name} must be non-negative")
        if self.intake_acquisition_usd is not None and self.intake_acquisition_usd < 0:
            raise ScenarioValidationError("intake_acquisition_usd must be non-negative")


@dataclass(frozen=True)
class ExecutionSpec:
    """How (not what) to simulate: batching, sharding, and audit knobs.

    Pure performance/observation knobs for
    :class:`~repro.fleet.scheduler.FleetSimulation` — ``block_days`` sizes
    the vectorized day-batches the fleet loop precomputes at once,
    ``shards`` fans the deferred dispatch replay out across a process
    pool, and ``audit`` turns on the post-run conservation-invariant
    checks of :mod:`repro.telemetry.observatory.audit`.  Every setting is
    bitwise-identical to every other (locked by tests), which is why
    :meth:`ScenarioSpec.sha256` excludes this block: the same experiment
    run with different execution knobs keys the same store entry.
    """

    block_days: int = 1
    shards: int = 1
    audit: bool = False

    def __post_init__(self) -> None:
        if self.block_days < 1:
            raise ScenarioValidationError("block_days must be >= 1")
        if self.shards < 1:
            raise ScenarioValidationError("shards must be >= 1")


# ---------------------------------------------------------------------------
# The scenario spec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, serializable description of one fleet experiment."""

    name: str
    description: str = ""
    sites: Tuple[SiteSpec, ...] = ()
    routing: RoutingSpec = field(default_factory=RoutingSpec)
    demand: DemandSpec = field(default_factory=DemandSpec)
    charging: ChargingSpec = field(default_factory=ChargingSpec)
    forecast: ForecastSpec = field(default_factory=ForecastSpec)
    economics: EconomicsSpec = field(default_factory=EconomicsSpec)
    execution: ExecutionSpec = field(default_factory=ExecutionSpec)
    duration_days: int = 30
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioValidationError("name must be non-empty")
        if not self.sites:
            raise ScenarioValidationError("sites must list at least one site")
        if not isinstance(self.sites, tuple):
            object.__setattr__(self, "sites", tuple(self.sites))
        names = [site.name for site in self.sites]
        if len(set(names)) != len(names):
            raise ScenarioValidationError(f"sites must have unique names, got {names}")
        if self.duration_days <= 0:
            raise ScenarioValidationError("duration_days must be positive")
        if self.forecast.model != "none" and self.charging.coupling != "dispatch":
            raise ScenarioValidationError(
                f"forecast.model={self.forecast.model!r} requires "
                "charging.coupling='dispatch' (a forecast only acts through "
                f"the battery dispatch); got {self.charging.coupling!r}"
            )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A plain-data (JSON-compatible) representation of the spec."""
        return _to_plain(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output, validating every field."""
        return _from_plain(cls, data, path="")

    def to_json(self, indent: int = 2) -> str:
        """Serialize to a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def sha256(self) -> str:
        """The spec's canonical content hash (SHA-256 of its sorted JSON).

        Semantically identical specs hash identically regardless of how they
        were spelled: dict key order never matters (``to_json`` sorts keys),
        omitted fields equal explicitly restated defaults (both resolve to
        the same dataclass value), and numeric fields are canonicalized by
        declared type (``_to_plain`` emits ``1.0``, not ``1``, for a float
        field), so a spec built with ``count=10, fraction_of_capacity=1``
        keys the same store entry as its JSON round-trip.  This is the key
        for sweep-cell deduplication and the durable experiment store.

        The ``execution`` block is excluded: batching/sharding knobs change
        how a run executes, never what it computes (bitwise, locked by
        tests), so the same experiment hashes identically at any block size
        or shard count and store entries stay shareable across them.
        """
        payload = self.to_dict()
        payload.pop("execution", None)
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Deserialize from :meth:`to_json` output."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ScenarioValidationError(f"invalid scenario JSON: {error}") from None
        return cls.from_dict(data)

    # -- overrides ---------------------------------------------------------

    def with_overrides(self, overrides: Mapping[str, Any]) -> "ScenarioSpec":
        """Return a copy with dotted-path overrides applied.

        ``overrides`` maps dotted paths to values, list indices included::

            spec.with_overrides({
                "duration_days": 2,
                "routing.policy": "round-robin",
                "sites.0.devices.count": 50,
            })

        Unknown paths raise :class:`ScenarioValidationError` listing the
        fields available at the failing segment.

        ``churn`` is per-site, but a churn policy usually applies fleet-wide:
        a top-level ``churn.<field>`` (or whole-``churn``) path broadcasts to
        every site, so ``--set churn.sampler=bucket`` flips the engine on all
        of them without spelling each ``sites.N.churn.sampler`` out.
        """
        data = self.to_dict()
        for dotted, value in overrides.items():
            if dotted == "churn" or dotted.startswith("churn."):
                suffix = dotted[len("churn"):]
                for index in range(len(data["sites"])):
                    _set_dotted(data, f"sites.{index}.churn{suffix}", value)
                continue
            _set_dotted(data, dotted, value)
        return ScenarioSpec.from_dict(data)


def decode_override_value(raw: str) -> Any:
    """Decode one CLI override value: JSON when possible, bare string otherwise.

    The single decode policy for every ``--set`` surface (``run`` and
    ``sweep``), so ``2`` yields an int, ``true`` a bool, and
    ``round-robin`` a string everywhere.
    """
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        return raw


def parse_override(text: str) -> Tuple[str, Any]:
    """Parse one CLI ``key=value`` override into ``(dotted_path, value)``.

    The value is JSON-decoded when possible (numbers, booleans, ``null``,
    quoted strings, lists) and kept as a bare string otherwise, so
    ``--set duration_days=2`` yields an int and ``--set routing.policy=round-robin``
    a string.
    """
    key, separator, raw = text.partition("=")
    if not separator or not key:
        raise ScenarioValidationError(
            f"override {text!r} is not of the form dotted.path=value"
        )
    return key, decode_override_value(raw)


# ---------------------------------------------------------------------------
# Generic dataclass <-> plain-data conversion
# ---------------------------------------------------------------------------


def _to_plain(value: Any) -> Any:
    if dataclasses.is_dataclass(value):
        hints = typing.get_type_hints(type(value))
        return {
            spec_field.name: _canonical_scalar(
                _to_plain(getattr(value, spec_field.name)),
                hints.get(spec_field.name),
            )
            for spec_field in dataclasses.fields(value)
        }
    if isinstance(value, tuple):
        return [_to_plain(item) for item in value]
    return value


def _canonical_scalar(value: Any, hint: Any) -> Any:
    """Coerce a plain value to its declared numeric type.

    A frozen dataclass accepts ``DemandSpec(fraction_of_capacity=1)`` (an
    int for a float field) without complaint, but ``json.dumps`` spells the
    two as ``1`` versus ``1.0`` — so semantically identical specs would
    serialize (and therefore hash) differently.  Canonicalizing here makes
    ``to_dict``/``to_json`` output depend only on the spec's *meaning*:
    every float-typed field (plain or ``Optional``) serializes as a float.
    """
    if typing.get_origin(hint) is Union:
        inner = [arg for arg in typing.get_args(hint) if arg is not type(None)]
        if value is None or not inner:
            return value
        hint = inner[0]
    if hint is float and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    return value


def _describe(path: str) -> str:
    return path if path else "scenario"


def _from_plain(cls: type, data: Any, path: str) -> Any:
    """Build dataclass ``cls`` from plain data, naming bad fields by path."""
    if not isinstance(data, Mapping):
        raise ScenarioValidationError(
            f"{_describe(path)} must be a mapping, got {type(data).__name__}"
        )
    hints = typing.get_type_hints(cls)
    known = {spec_field.name for spec_field in dataclasses.fields(cls)}
    unknown = set(data) - known
    if unknown:
        name = sorted(unknown)[0]
        where = f"{path}.{name}" if path else name
        raise ScenarioValidationError(
            f"unknown field {where!r}; expected one of: {', '.join(sorted(known))}"
        )
    kwargs = {}
    for key, value in data.items():
        where = f"{path}.{key}" if path else key
        kwargs[key] = _convert(value, hints[key], where)
    try:
        return cls(**kwargs)
    except ScenarioValidationError as error:
        raise ScenarioValidationError(f"{_describe(path)}: {error}") from None
    except TypeError as error:
        raise ScenarioValidationError(f"{_describe(path)}: {error}") from None


def _convert(value: Any, hint: Any, path: str) -> Any:
    origin = typing.get_origin(hint)
    args = typing.get_args(hint)
    if origin is Union:
        if value is None:
            if type(None) in args:
                return None
            raise ScenarioValidationError(f"field {path!r} must not be null")
        inner = [arg for arg in args if arg is not type(None)]
        return _convert(value, inner[0], path)
    if origin is tuple:
        if not isinstance(value, (list, tuple)):
            raise ScenarioValidationError(
                f"field {path!r} must be a list, got {type(value).__name__}"
            )
        element_hint = args[0] if args else Any
        return tuple(
            _convert(item, element_hint, f"{path}.{index}")
            for index, item in enumerate(value)
        )
    if dataclasses.is_dataclass(hint):
        return _from_plain(hint, value, path)
    if hint is bool:
        if not isinstance(value, bool):
            raise ScenarioValidationError(
                f"field {path!r} must be a boolean, got {value!r}"
            )
        return value
    if hint is int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ScenarioValidationError(
                f"field {path!r} must be an integer, got {value!r}"
            )
        return value
    if hint is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ScenarioValidationError(
                f"field {path!r} must be a number, got {value!r}"
            )
        return float(value)
    if hint is str:
        if not isinstance(value, str):
            raise ScenarioValidationError(
                f"field {path!r} must be a string, got {value!r}"
            )
        return value
    return value


def _set_dotted(data: Any, dotted: str, value: Any) -> None:
    """Set ``data[a][b]...[z] = value`` following a dotted path with indices."""
    if not dotted:
        raise ScenarioValidationError("override path must be non-empty")
    parts = dotted.split(".")
    node = data
    walked = []
    for part in parts[:-1]:
        node = _step_into(node, part, walked, dotted)
        walked.append(part)
    leaf = parts[-1]
    if isinstance(node, dict):
        if leaf not in node:
            raise ScenarioValidationError(
                f"unknown override path {dotted!r}: no field {leaf!r} at "
                f"{'.'.join(walked) or 'top level'}; available: "
                f"{', '.join(sorted(node))}"
            )
        node[leaf] = value
    elif isinstance(node, list):
        index = _as_index(leaf, dotted, node)
        node[index] = value
    else:
        raise ScenarioValidationError(
            f"override path {dotted!r} descends into a scalar at {leaf!r}"
        )


def _step_into(node: Any, part: str, walked: list, dotted: str) -> Any:
    where = ".".join(walked) or "top level"
    if isinstance(node, dict):
        if part not in node:
            raise ScenarioValidationError(
                f"unknown override path {dotted!r}: segment {part!r} at {where}; "
                f"available: {', '.join(sorted(node))}"
            )
        return node[part]
    if isinstance(node, list):
        return node[_as_index(part, dotted, node)]
    raise ScenarioValidationError(
        f"override path {dotted!r}: segment {part!r} at {where} descends "
        "into a scalar"
    )


def _as_index(part: str, dotted: str, node: list) -> int:
    try:
        index = int(part)
    except ValueError:
        raise ScenarioValidationError(
            f"override path {dotted!r}: expected a list index, got {part!r}"
        ) from None
    if not -len(node) <= index < len(node):
        raise ScenarioValidationError(
            f"override path {dotted!r}: index {index} out of range for "
            f"a {len(node)}-element list"
        )
    return index
