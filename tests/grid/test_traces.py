"""Grid traces and the synthetic CAISO-like generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.grid.traces import CaisoLikeTraceGenerator, GridTrace


@pytest.fixture(scope="module")
def one_day():
    return CaisoLikeTraceGenerator(seed=7).generate_day(0)


@pytest.fixture(scope="module")
def five_days():
    return CaisoLikeTraceGenerator(seed=7).generate_days(5)


class TestGridTrace:
    def test_from_series_and_basic_properties(self):
        trace = GridTrace.from_series([100, 200, 300, 400], interval_s=600)
        assert len(trace) == 4
        assert trace.interval_s == 600
        assert trace.mean_intensity() == pytest.approx(250.0)
        assert trace.percentile(0) == pytest.approx(100.0)
        assert trace.percentile(100) == pytest.approx(400.0)

    def test_constant_trace(self):
        trace = GridTrace.constant(257.0, duration_s=3_600, interval_s=300)
        assert trace.mean_intensity() == pytest.approx(257.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            GridTrace.from_series([100.0])
        with pytest.raises(ValueError):
            GridTrace(times_s=np.array([0.0, 1.0]), intensity_g_per_kwh=np.array([1.0]))
        with pytest.raises(ValueError):
            GridTrace(times_s=np.array([1.0, 0.0]), intensity_g_per_kwh=np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            GridTrace(times_s=np.array([0.0, 1.0]), intensity_g_per_kwh=np.array([1.0, -2.0]))

    def test_intensity_at_interpolates_and_clamps(self):
        trace = GridTrace.from_series([100, 300], interval_s=100)
        assert trace.intensity_at(50) == pytest.approx(200.0)
        assert trace.intensity_at(-10) == pytest.approx(100.0)
        assert trace.intensity_at(1_000) == pytest.approx(300.0)

    def test_slice_and_day_split(self, five_days):
        assert five_days.n_days == 5
        day2 = five_days.day(2)
        assert day2.duration_s == pytest.approx(units.SECONDS_PER_DAY, rel=0.01)
        assert len(five_days.days()) == 5
        with pytest.raises(IndexError):
            five_days.day(5)

    def test_concatenate_preserves_samples(self, one_day):
        double = GridTrace.concatenate([one_day, one_day])
        assert len(double) == 2 * len(one_day)
        assert double.n_days == 2

    def test_carbon_for_constant_power(self):
        trace = GridTrace.constant(250.0, duration_s=units.SECONDS_PER_DAY, interval_s=300)
        grams = trace.carbon_for_constant_power(1_000.0)
        # 1 kW for ~one day at 250 g/kWh is ~6 kg.
        expected = 1_000 * len(trace) * 300 / units.JOULES_PER_KWH * 250
        assert grams == pytest.approx(expected)

    def test_carbon_rejects_negative_power(self, one_day):
        with pytest.raises(ValueError):
            one_day.carbon_for_constant_power(-5.0)


class TestCaisoLikeGenerator:
    def test_day_has_5_minute_resolution(self, one_day):
        assert len(one_day) == 288
        assert one_day.interval_s == pytest.approx(300.0)

    def test_mean_intensity_near_california_average(self, five_days):
        assert 200 < five_days.mean_intensity() < 350

    def test_intensity_anticorrelated_with_solar(self, one_day):
        solar = one_day.supply_mw["solar"]
        correlation = np.corrcoef(solar, one_day.intensity_g_per_kwh)[0, 1]
        assert correlation < -0.7

    def test_midday_cleaner_than_evening(self, one_day):
        hours = one_day.times_s / 3_600.0
        midday = one_day.intensity_g_per_kwh[(hours >= 11) & (hours < 15)].mean()
        evening = one_day.intensity_g_per_kwh[(hours >= 19) & (hours < 22)].mean()
        assert midday < evening

    def test_deterministic_for_seed(self):
        a = CaisoLikeTraceGenerator(seed=3).generate_day(1)
        b = CaisoLikeTraceGenerator(seed=3).generate_day(1)
        np.testing.assert_allclose(a.intensity_g_per_kwh, b.intensity_g_per_kwh)

    def test_days_differ_from_each_other(self):
        gen = CaisoLikeTraceGenerator(seed=3)
        a = gen.generate_day(0)
        b = gen.generate_day(1)
        assert not np.allclose(a.intensity_g_per_kwh, b.intensity_g_per_kwh)

    def test_generate_month_length(self):
        month = CaisoLikeTraceGenerator(seed=1).generate_month(3)
        assert month.n_days == 3

    def test_invalid_day_count(self):
        with pytest.raises(ValueError):
            CaisoLikeTraceGenerator().generate_days(0)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=400))
    def test_any_day_is_physically_sane(self, day_index):
        day = CaisoLikeTraceGenerator(seed=11).generate_day(day_index)
        assert np.all(day.intensity_g_per_kwh > 0)
        assert np.all(day.intensity_g_per_kwh < 820)  # never dirtier than pure coal
        assert np.all(day.supply_mw["solar"] >= 0)


class TestTraceEdgeCases:
    """Interval-boundary and wrap-around behaviour of slice/intensity_at."""

    def test_slice_is_half_open_at_interval_boundaries(self):
        trace = GridTrace.from_series([10, 20, 30, 40, 50, 60], interval_s=100)
        part = trace.slice(100, 400)
        # [100, 400) keeps the samples at 100, 200, 300 but not 400.
        assert list(part.intensity_g_per_kwh) == [20, 30, 40]
        # Times are re-based to zero.
        assert part.times_s[0] == 0.0
        assert part.times_s[-1] == 200.0

    def test_adjacent_slices_partition_the_trace(self):
        trace = GridTrace.from_series(list(range(10)), interval_s=100)
        left = trace.slice(0, 500)
        right = trace.slice(500, 1_000)
        rejoined = np.concatenate(
            [left.intensity_g_per_kwh, right.intensity_g_per_kwh]
        )
        assert np.array_equal(rejoined, trace.intensity_g_per_kwh)

    def test_slice_requires_at_least_two_samples(self):
        trace = GridTrace.from_series([10, 20, 30, 40], interval_s=100)
        with pytest.raises(ValueError, match="fewer than two samples"):
            trace.slice(150, 199)
        with pytest.raises(ValueError, match="end must be after start"):
            trace.slice(200, 200)

    def test_intensity_at_exact_sample_times(self):
        trace = GridTrace.from_series([10, 20, 30], interval_s=300)
        for i, expected in enumerate([10.0, 20.0, 30.0]):
            assert trace.intensity_at(i * 300.0) == pytest.approx(expected)

    def test_wraparound_periodicity(self):
        trace = GridTrace.from_series([10, 20, 30], interval_s=300)
        assert trace.period_s == pytest.approx(900.0)
        for t in (0.0, 150.0, 600.0):
            assert trace.intensity_at(t + trace.period_s, wrap=True) == pytest.approx(
                trace.intensity_at(t, wrap=True)
            )
            assert trace.intensity_at(t + 7 * trace.period_s, wrap=True) == pytest.approx(
                trace.intensity_at(t, wrap=True)
            )

    def test_wraparound_seam_interpolates_last_to_first(self):
        trace = GridTrace.from_series([10, 20, 30], interval_s=300)
        # Halfway between the last sample (30 at t=600) and the repeated
        # first sample (10 at t=900).
        assert trace.intensity_at(750.0, wrap=True) == pytest.approx(20.0)
        # Exactly at the period boundary, back to the first sample.
        assert trace.intensity_at(900.0, wrap=True) == pytest.approx(10.0)

    def test_wraparound_daily_trace_is_seamless(self, one_day):
        """A midnight-to-midnight day wraps with a one-day period."""
        assert one_day.period_s == pytest.approx(units.SECONDS_PER_DAY)
        noon = 12 * 3_600.0
        week_later = noon + 7 * units.SECONDS_PER_DAY
        assert one_day.intensity_at(week_later, wrap=True) == pytest.approx(
            one_day.intensity_at(noon)
        )

    def test_intensities_at_vectorizes_intensity_at(self, one_day):
        times = np.array([-100.0, 0.0, 40_000.0, 90_000.0])
        unwrapped = one_day.intensities_at(times)
        assert unwrapped == pytest.approx(
            [one_day.intensity_at(t) for t in times]
        )
        wrapped = one_day.intensities_at(times, wrap=True)
        assert wrapped == pytest.approx(
            [one_day.intensity_at(t, wrap=True) for t in times]
        )

    def test_negative_times_wrap_backwards(self):
        trace = GridTrace.from_series([10, 20, 30], interval_s=300)
        assert trace.intensity_at(-300.0, wrap=True) == pytest.approx(
            trace.intensity_at(600.0, wrap=True)
        )


class TestFromCsv:
    def test_bundled_sample_loads(self):
        from repro.grid.traces import CAISO_SAMPLE_CSV

        trace = GridTrace.from_csv(CAISO_SAMPLE_CSV)
        assert len(trace) == 72
        assert trace.interval_s == pytest.approx(3600.0)
        assert trace.times_s[0] == 0.0
        assert 150 < trace.mean_intensity() < 450

    def test_numeric_seconds_and_custom_columns(self, tmp_path):
        path = tmp_path / "grid.csv"
        path.write_text("t,extra,ci\n0,x,100\n300,y,200\n600,z,150\n")
        trace = GridTrace.from_csv(str(path), time_col="t", intensity_col="ci")
        assert trace.intensity_g_per_kwh == pytest.approx([100.0, 200.0, 150.0])
        assert trace.interval_s == pytest.approx(300.0)

    def test_iso_timestamps_are_rebased_to_zero(self, tmp_path):
        path = tmp_path / "grid.csv"
        path.write_text(
            "timestamp,intensity_gco2_per_kwh\n"
            "2021-04-01T00:00:00+00:00,100\n"
            "2021-04-01T01:00:00+00:00,200\n"
        )
        trace = GridTrace.from_csv(str(path))
        assert trace.times_s == pytest.approx([0.0, 3600.0])

    def test_missing_column_names_available_ones(self, tmp_path):
        path = tmp_path / "grid.csv"
        path.write_text("time,ci\n0,100\n300,200\n")
        with pytest.raises(ValueError, match="missing column 'timestamp'.*time, ci"):
            GridTrace.from_csv(str(path))

    def test_unparseable_cell_names_row(self, tmp_path):
        path = tmp_path / "grid.csv"
        path.write_text("timestamp,intensity_gco2_per_kwh\n0,100\nnoon-ish,200\n")
        with pytest.raises(ValueError, match="row 3"):
            GridTrace.from_csv(str(path))

    def test_too_few_rows_rejected(self, tmp_path):
        path = tmp_path / "grid.csv"
        path.write_text("timestamp,intensity_gco2_per_kwh\n0,100\n")
        with pytest.raises(ValueError, match="two data rows"):
            GridTrace.from_csv(str(path))

    def test_gapped_rows_rejected(self, tmp_path):
        path = tmp_path / "grid.csv"
        path.write_text(
            "timestamp,intensity_gco2_per_kwh\n"
            "0,100\n3600,110\n10800,120\n14400,130\n"
        )
        with pytest.raises(ValueError, match="uniformly spaced.*row 4"):
            GridTrace.from_csv(str(path))

    def test_non_finite_cells_rejected(self, tmp_path):
        path = tmp_path / "grid.csv"
        path.write_text("timestamp,intensity_gco2_per_kwh\n0,100\n3600,NaN\n")
        with pytest.raises(ValueError, match="row 3.*not finite"):
            GridTrace.from_csv(str(path))
        path.write_text("timestamp,intensity_gco2_per_kwh\ninf,100\n3600,200\n")
        with pytest.raises(ValueError, match="row 2.*not finite"):
            GridTrace.from_csv(str(path))
