"""Figure 1 — smartphone capability versus AWS T4g instances."""

from repro.analysis.figures import fig1_phone_capability
from repro.analysis.report import format_table


def test_fig1_phone_capability(benchmark, report):
    data = benchmark(fig1_phone_capability)
    rows = [
        [
            int(year),
            f"{perf:.2f}",
            f"{cores:.1f}",
            f"{mem_min:.1f}",
            f"{mem_max:.1f}",
        ]
        for year, perf, cores, mem_min, mem_max in zip(
            data.performance.years,
            data.performance.mean,
            data.cores.mean,
            data.memory_min.mean,
            data.memory_max.mean,
        )
    ]
    report(
        "Figure 1: flagship phone capability by year (mean)",
        format_table(["Year", "GB norm", "Cores", "Mem min", "Mem max"], rows),
    )
    # Recent phones meet or exceed the mid-size T4g reference lines.
    assert data.first_year_phones_reach("t4g.medium") <= 2019
    assert data.performance.mean[-1] >= 2.0
    assert data.cores.mean[-1] >= 8.0
