"""The CCI metric and the single-device carbon model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cci import (
    DeviceCarbonModel,
    WorkRate,
    computational_carbon_intensity,
    second_life_cci,
)
from repro.devices.benchmarks import DIJKSTRA, PDF_RENDER, SGEMM
from repro.devices.catalog import NEXUS_4, PIXEL_3A, POWEREDGE_R740, PROLIANT_DL380_G6
from repro.grid.mix import california, solar_24_7, zero_carbon


class TestBareCCI:
    def test_ratio(self):
        assert computational_carbon_intensity(1_000.0, 500.0) == pytest.approx(2.0)

    def test_rejects_non_positive_work(self):
        with pytest.raises(ValueError):
            computational_carbon_intensity(1.0, 0.0)

    def test_rejects_negative_carbon(self):
        with pytest.raises(ValueError):
            computational_carbon_intensity(-1.0, 10.0)


class TestWorkRate:
    def test_from_benchmark(self):
        rate = WorkRate.from_benchmark(PIXEL_3A, SGEMM)
        assert rate.per_second_at_full_load == pytest.approx(39.0)
        assert rate.unit == "Gflop"

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            WorkRate(unit="ops", per_second_at_full_load=0.0)


class TestDeviceCarbonModel:
    def test_reused_device_has_zero_device_embodied(self):
        model = DeviceCarbonModel(PIXEL_3A, reused=True)
        assert model.carbon_components(36.0).embodied_g == 0.0

    def test_new_device_pays_embodied(self):
        model = DeviceCarbonModel(POWEREDGE_R740, reused=False)
        components = model.carbon_components(36.0)
        assert components.embodied_g == pytest.approx(3_000_000.0)

    def test_operational_scales_linearly_with_lifetime(self):
        model = DeviceCarbonModel(PIXEL_3A, reused=True)
        one = model.carbon_components(12.0).operational_g
        three = model.carbon_components(36.0).operational_g
        assert three == pytest.approx(3 * one)

    def test_battery_replacement_adds_embodied_steps(self):
        with_battery = DeviceCarbonModel(
            PIXEL_3A, reused=True, include_battery_replacement=True
        )
        without = DeviceCarbonModel(PIXEL_3A, reused=True)
        assert with_battery.carbon_components(36.0).embodied_g > 0
        assert without.carbon_components(36.0).embodied_g == 0

    def test_smart_charging_reduces_operational(self):
        plain = DeviceCarbonModel(PIXEL_3A, reused=True)
        smart = DeviceCarbonModel(PIXEL_3A, reused=True, smart_charging=True)
        assert (
            smart.carbon_components(36.0).operational_g
            < plain.carbon_components(36.0).operational_g
        )

    def test_smart_charging_requires_battery(self):
        with pytest.raises(ValueError):
            DeviceCarbonModel(POWEREDGE_R740, smart_charging=True)
        with pytest.raises(ValueError):
            DeviceCarbonModel(PROLIANT_DL380_G6, include_battery_replacement=True)

    def test_networking_term(self):
        model = DeviceCarbonModel(
            PIXEL_3A, reused=True, network_rate_bytes_per_s=1e6
        )
        components = model.carbon_components(12.0)
        assert components.networking_g > 0
        no_net = DeviceCarbonModel(PIXEL_3A, reused=True)
        assert no_net.carbon_components(12.0).networking_g == 0.0

    def test_zero_carbon_grid_leaves_only_embodied(self):
        model = DeviceCarbonModel(POWEREDGE_R740, reused=False, energy_mix=zero_carbon())
        components = model.carbon_components(36.0)
        assert components.operational_g == 0.0
        assert components.total_g == components.embodied_g

    def test_cci_decreases_with_lifetime_for_new_devices(self):
        model = DeviceCarbonModel(POWEREDGE_R740, reused=False)
        months = np.array([6.0, 12.0, 24.0, 48.0])
        series = model.cci_series(SGEMM, months)
        assert np.all(np.diff(series) < 0)

    def test_cci_constant_with_lifetime_for_reused_device_without_battery(self):
        model = DeviceCarbonModel(PROLIANT_DL380_G6, reused=True)
        series = model.cci_series(SGEMM, [6.0, 24.0, 60.0])
        assert series[0] == pytest.approx(series[-1], rel=1e-9)

    def test_reused_phone_beats_new_server_on_dijkstra(self):
        phone = DeviceCarbonModel(PIXEL_3A, reused=True)
        server = DeviceCarbonModel(POWEREDGE_R740, reused=False)
        assert phone.cci(DIJKSTRA, 36.0) < server.cci(DIJKSTRA, 36.0)

    def test_work_follows_light_medium_scaling(self):
        model = DeviceCarbonModel(PIXEL_3A, reused=True)
        work = model.total_work(SGEMM, 1.0)
        expected = 39.0 * 0.305 * 30.4375 * 86_400
        assert work == pytest.approx(expected, rel=1e-6)

    def test_cleaner_grid_means_lower_cci(self):
        dirty = DeviceCarbonModel(PIXEL_3A, reused=True, energy_mix=california())
        clean = DeviceCarbonModel(PIXEL_3A, reused=True, energy_mix=solar_24_7())
        assert clean.cci(SGEMM, 36.0) < dirty.cci(SGEMM, 36.0)

    def test_as_new_round_trip(self):
        model = DeviceCarbonModel(PIXEL_3A, reused=True)
        as_new = model.as_new()
        assert not as_new.reused
        assert as_new.device is PIXEL_3A

    def test_invalid_lifetime(self):
        model = DeviceCarbonModel(PIXEL_3A, reused=True)
        with pytest.raises(ValueError):
            model.carbon_components(0.0)
        with pytest.raises(ValueError):
            model.total_work(SGEMM, -1.0)

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=1.0, max_value=120.0))
    def test_cci_is_positive_and_finite(self, months):
        model = DeviceCarbonModel(NEXUS_4, reused=True, include_battery_replacement=True)
        value = model.cci(PDF_RENDER, months)
        assert value > 0
        assert np.isfinite(value)


class TestSecondLifeCCI:
    def test_second_life_between_new_and_reused(self):
        reused = DeviceCarbonModel(PIXEL_3A, reused=True)
        new = DeviceCarbonModel(PIXEL_3A, reused=False)
        two_life = second_life_cci(
            first_life=new,
            second_life=reused,
            benchmark=SGEMM,
            first_life_months=24.0,
            second_life_months=36.0,
        )
        # Charging the manufacturing carbon but also crediting first-life work
        # lands between the pure-reuse and short-new-life extremes.
        assert reused.cci(SGEMM, 36.0) < two_life < new.cci(SGEMM, 24.0)

    def test_requires_same_device(self):
        with pytest.raises(ValueError):
            second_life_cci(
                DeviceCarbonModel(PIXEL_3A),
                DeviceCarbonModel(NEXUS_4),
                SGEMM,
                12.0,
                12.0,
            )
