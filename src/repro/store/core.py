"""The content-addressed experiment store.

An :class:`ExperimentStore` is a directory mapping canonical spec hashes
(:meth:`~repro.scenarios.spec.ScenarioSpec.sha256` — SHA-256 of the spec's
canonical JSON) to one JSON entry each, holding the fully serialized
:class:`~repro.scenarios.runner.ScenarioResult`, the run's telemetry
manifest when it was instrumented, and provenance (repro version, seed,
duration).  Because every simulation is fully seeded, the entry for a hash
never goes stale: re-running the spec reproduces the stored result
bitwise, so loading is always as good as simulating.

Layout::

    <root>/results/<64-hex-sha256>.json

Writes are atomic (temp file + rename via
:func:`repro.ioutils.atomic_write_text`), so a sweep killed mid-grid
leaves only complete entries behind — a later sweep resumes from them and
fills in the rest.  :meth:`ExperimentStore.gc` sweeps up the two kinds of
debris that can still accumulate (orphaned ``*.tmp`` files from a crash
between create and rename, and entries corrupted by forces outside the
store), leaving every remaining entry loadable.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro import __version__
from repro.ioutils import atomic_write_text
from repro.store.serialize import (
    RESULT_SCHEMA,
    SerializationError,
    result_from_dict,
    result_to_dict,
)

#: Schema tag stamped into every store entry.
ENTRY_SCHEMA = "repro-store/1"

_KEY_LENGTH = 64
_HEX_DIGITS = set("0123456789abcdef")


class StoreError(Exception):
    """A store operation failed: missing key, ambiguous prefix, bad entry."""


def _is_key(text: str) -> bool:
    return len(text) == _KEY_LENGTH and set(text) <= _HEX_DIGITS


def validate_entry(payload: Any) -> None:
    """Check one store entry's envelope; raise :class:`StoreError` on violation.

    The envelope only — the ``result`` payload is validated by
    :func:`~repro.store.serialize.result_from_dict` when it is decoded.
    """
    if not isinstance(payload, dict):
        raise StoreError(f"entry must be a mapping, got {type(payload).__name__}")
    if payload.get("schema") != ENTRY_SCHEMA:
        raise StoreError(
            f"entry schema must be {ENTRY_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    key = payload.get("spec_sha256")
    if not isinstance(key, str) or not _is_key(key):
        raise StoreError(f"entry spec_sha256 must be a 64-hex digest, got {key!r}")
    for field, kinds in (
        ("scenario", str),
        ("seed", int),
        ("duration_days", int),
        ("repro_version", str),
        ("result", dict),
    ):
        if not isinstance(payload.get(field), kinds):
            raise StoreError(f"entry is missing or mistypes {field!r}")
    if payload["result"].get("schema") != RESULT_SCHEMA:
        raise StoreError(
            f"entry result schema must be {RESULT_SCHEMA!r}, "
            f"got {payload['result'].get('schema')!r}"
        )
    manifest = payload.get("manifest")
    if manifest is not None and not isinstance(manifest, dict):
        raise StoreError("entry manifest must be a mapping or null")


@dataclass(frozen=True)
class StoredExperiment:
    """One loaded store entry: the result plus its provenance."""

    key: str
    scenario: str
    seed: int
    duration_days: int
    repro_version: str
    result: Any
    manifest: Optional[Dict[str, Any]]


class ExperimentStore:
    """A content-addressed, crash-safe, on-disk store of scenario results."""

    def __init__(self, root: str) -> None:
        self.root = root

    @property
    def results_dir(self) -> str:
        return os.path.join(self.root, "results")

    def path_for(self, key: str) -> str:
        """The entry path for one spec hash (whether or not it exists)."""
        if not _is_key(key):
            raise StoreError(f"not a spec hash: {key!r}")
        return os.path.join(self.results_dir, f"{key}.json")

    # -- writing -----------------------------------------------------------

    def put(self, result, manifest: Optional[Dict[str, Any]] = None) -> str:
        """Persist one result under its spec's content hash; return the key.

        Idempotent: the same result re-persists to an identical file (the
        entry carries no timestamps), so concurrent or repeated sweeps
        over the same grid converge instead of conflicting.  The write is
        atomic — a reader never observes a partial entry.
        """
        key = result.spec.sha256()
        entry = {
            "schema": ENTRY_SCHEMA,
            "kind": "experiment",
            "spec_sha256": key,
            "scenario": result.spec.name,
            "seed": result.spec.seed,
            "duration_days": result.spec.duration_days,
            "repro_version": __version__,
            "result": result_to_dict(result),
            "manifest": manifest,
        }
        os.makedirs(self.results_dir, exist_ok=True)
        atomic_write_text(
            self.path_for(key), json.dumps(entry, sort_keys=True) + "\n"
        )
        return key

    # -- reading -----------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return _is_key(key) and os.path.exists(self.path_for(key))

    def __len__(self) -> int:
        return len(self.keys())

    def keys(self) -> List[str]:
        """Every stored spec hash, sorted (deterministic listing order)."""
        if not os.path.isdir(self.results_dir):
            return []
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(self.results_dir)
            if name.endswith(".json") and _is_key(name[: -len(".json")])
        )

    def resolve(self, prefix: str) -> str:
        """Expand a unique key prefix (CLI convenience) to the full hash."""
        prefix = prefix.lower()
        if _is_key(prefix):
            return prefix
        matches = [key for key in self.keys() if key.startswith(prefix)]
        if not matches:
            raise StoreError(f"no stored entry matches {prefix!r}")
        if len(matches) > 1:
            raise StoreError(
                f"{prefix!r} is ambiguous: matches {len(matches)} entries "
                f"({', '.join(key[:12] for key in matches[:4])}...)"
            )
        return matches[0]

    def get_entry(self, key: str) -> StoredExperiment:
        """Load one entry by full key; :class:`StoreError` if missing or bad."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            raise StoreError(f"no stored entry for {key}") from None
        except (OSError, json.JSONDecodeError) as error:
            raise StoreError(f"cannot read entry {key}: {error}") from None
        validate_entry(payload)
        if payload["spec_sha256"] != key:
            raise StoreError(
                f"entry {key} claims spec_sha256 {payload['spec_sha256']}"
            )
        try:
            result = result_from_dict(payload["result"])
        except SerializationError as error:
            raise StoreError(f"entry {key} does not decode: {error}") from None
        if result.spec.sha256() != key:
            raise StoreError(
                f"entry {key} decodes to a spec hashing "
                f"{result.spec.sha256()} — content-address violated"
            )
        return StoredExperiment(
            key=key,
            scenario=payload["scenario"],
            seed=payload["seed"],
            duration_days=payload["duration_days"],
            repro_version=payload["repro_version"],
            result=result,
            manifest=payload["manifest"],
        )

    def get_entry_or_none(self, key: str) -> Optional[StoredExperiment]:
        """Like :meth:`get_entry`, but a missing *or corrupt* entry is a miss.

        This is the sweep's lookup: a corrupt entry (truncated by forces
        the atomic writer cannot control) simply re-simulates and
        overwrites, so a store never wedges a sweep.
        """
        try:
            return self.get_entry(key)
        except StoreError:
            return None

    def entries(self) -> Iterator[StoredExperiment]:
        """Iterate every loadable entry in key order (corrupt ones skipped)."""
        for key in self.keys():
            entry = self.get_entry_or_none(key)
            if entry is not None:
                yield entry

    # -- maintenance -------------------------------------------------------

    def gc(self) -> List[str]:
        """Remove orphaned temp files and unloadable entries; return their paths.

        Every path left under ``results/`` after ``gc`` is a loadable
        entry.  Valid entries are never touched.
        """
        removed: List[str] = []
        if not os.path.isdir(self.results_dir):
            return removed
        for name in sorted(os.listdir(self.results_dir)):
            path = os.path.join(self.results_dir, name)
            if not os.path.isfile(path):
                continue
            stem = name[: -len(".json")] if name.endswith(".json") else None
            if stem is not None and _is_key(stem):
                if self.get_entry_or_none(stem) is not None:
                    continue
            try:
                os.unlink(path)
            except OSError:
                continue
            removed.append(path)
        return removed
