"""Power models and load profiles."""

import pytest
from hypothesis import given, strategies as st

from repro.devices.power import (
    FULL_LOAD,
    IDLE,
    LIGHT_MEDIUM,
    ConstantPowerModel,
    LoadProfile,
    PiecewiseLinearPowerModel,
    validate_profile_average_power,
)


@pytest.fixture
def pixel_model():
    return PiecewiseLinearPowerModel.from_table2(p_100=2.5, p_50=1.9, p_10=1.4, p_idle=0.8)


class TestPiecewiseLinearPowerModel:
    def test_anchor_points_are_exact(self, pixel_model):
        assert pixel_model.power_at(0.0) == pytest.approx(0.8)
        assert pixel_model.power_at(0.10) == pytest.approx(1.4)
        assert pixel_model.power_at(0.50) == pytest.approx(1.9)
        assert pixel_model.power_at(1.0) == pytest.approx(2.5)

    def test_interpolation_between_anchors(self, pixel_model):
        assert pixel_model.power_at(0.30) == pytest.approx((1.4 + 1.9) / 2)
        assert pixel_model.power_at(0.75) == pytest.approx((1.9 + 2.5) / 2)

    def test_idle_and_peak_properties(self, pixel_model):
        assert pixel_model.idle_power_w == pytest.approx(0.8)
        assert pixel_model.peak_power_w == pytest.approx(2.5)

    def test_rejects_out_of_range_utilization(self, pixel_model):
        with pytest.raises(ValueError):
            pixel_model.power_at(-0.1)
        with pytest.raises(ValueError):
            pixel_model.power_at(1.1)

    def test_rejects_bad_anchors(self):
        with pytest.raises(ValueError):
            PiecewiseLinearPowerModel(anchors={})
        with pytest.raises(ValueError):
            PiecewiseLinearPowerModel(anchors={1.5: 10.0})
        with pytest.raises(ValueError):
            PiecewiseLinearPowerModel(anchors={0.5: -1.0})

    def test_energy_joules(self, pixel_model):
        assert pixel_model.energy_joules(1.0, 3_600.0) == pytest.approx(2.5 * 3_600)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_power_bounded_by_idle_and_peak(self, utilization):
        model = PiecewiseLinearPowerModel.from_table2(510, 369, 261, 201)
        power = model.power_at(utilization)
        assert model.idle_power_w <= power <= model.peak_power_w


class TestConstantPowerModel:
    def test_constant_everywhere(self):
        model = ConstantPowerModel(4.0)
        assert model.power_at(0.0) == model.power_at(1.0) == 4.0
        assert model.idle_power_w == model.peak_power_w == 4.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantPowerModel(-1.0)


class TestLoadProfile:
    def test_light_medium_matches_paper_table2_average(self, pixel_model):
        # Paper Table 2: Pixel 3A average 1.54 W under light-medium.
        assert pixel_model.average_power(LIGHT_MEDIUM) == pytest.approx(1.535, abs=0.01)

    def test_poweredge_average_matches_paper(self):
        model = PiecewiseLinearPowerModel.from_table2(510, 369, 261, 201)
        assert model.average_power(LIGHT_MEDIUM) == pytest.approx(308.7, abs=0.1)

    def test_average_utilization_light_medium(self):
        # 0.10*1 + 0.35*0.5 + 0.30*0.1 + 0.25*0 = 0.305
        assert LIGHT_MEDIUM.average_utilization() == pytest.approx(0.305)

    def test_average_throughput_scales_linearly(self):
        assert LIGHT_MEDIUM.average_throughput(100.0) == pytest.approx(30.5)
        assert FULL_LOAD.average_throughput(100.0) == pytest.approx(100.0)
        assert IDLE.average_throughput(100.0) == pytest.approx(0.0)

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            LoadProfile({1.0: 0.5, 0.0: 0.4})

    def test_rejects_negative_fraction(self):
        with pytest.raises(ValueError):
            LoadProfile({1.0: 1.5, 0.0: -0.5})

    def test_scaled_to_utilization(self):
        profile = LIGHT_MEDIUM.scaled_to_utilization(0.25)
        assert profile.average_utilization() == pytest.approx(0.25)
        zero = LIGHT_MEDIUM.scaled_to_utilization(0.0)
        assert zero.average_utilization() == pytest.approx(0.0)
        with pytest.raises(ValueError):
            LIGHT_MEDIUM.scaled_to_utilization(1.5)

    def test_validate_profile_average_power_breakdown(self, pixel_model):
        breakdown = validate_profile_average_power(pixel_model, LIGHT_MEDIUM)
        assert breakdown["average"] == pytest.approx(pixel_model.average_power(LIGHT_MEDIUM))
        contributions = [v for k, v in breakdown.items() if k != "average"]
        assert sum(contributions) == pytest.approx(breakdown["average"])

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_average_power_between_idle_and_peak(self, busy, idle_split):
        remaining = 1.0 - busy
        profile = LoadProfile(
            {1.0: busy, 0.5: remaining * idle_split, 0.0: remaining * (1 - idle_split)}
        )
        model = PiecewiseLinearPowerModel.from_table2(24, 16.2, 8.5, 3.4)
        average = model.average_power(profile)
        assert model.idle_power_w - 1e-9 <= average <= model.peak_power_w + 1e-9
