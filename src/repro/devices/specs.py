"""Device specification data model.

A :class:`DeviceSpec` bundles everything the carbon, charging, thermal, and
serving models need to know about a physical device: its class (smartphone,
laptop, server, or cloud instance), compute resources, embodied carbon, the
per-component embodied-carbon breakdown used by the reuse factor, its battery
(if any), and its measured power curve and benchmark scores.

The concrete devices studied by the paper (PowerEdge R740, ProLiant DL380 G6,
ThinkPad X1 Carbon G3, Pixel 3A, Nexus 4, Nexus 5, and the AWS EC2 instances
used as baselines) are instantiated in :mod:`repro.devices.catalog`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional

from repro.devices.battery import BatterySpec
from repro.devices.benchmarks import BenchmarkSuite
from repro.devices.power import PowerModel


class DeviceClass(enum.Enum):
    """Broad category of a device; used to pick defaults and for reporting."""

    SMARTPHONE = "smartphone"
    LAPTOP = "laptop"
    SERVER = "server"
    CLOUD_INSTANCE = "cloud_instance"


@dataclass(frozen=True)
class ComponentBreakdown:
    """Fractional embodied-carbon contribution of device subcomponents.

    The fractions mirror Table 3 of the paper: each entry maps a component
    category (``"compute"``, ``"network"``, ``"battery"``, ``"display"``,
    ``"storage"``, ``"sensors"``, ``"other"``) to the fraction of the device's
    total embodied carbon attributable to it.  Fractions should sum to 1.0
    (a tolerance is applied in :meth:`validate`).
    """

    fractions: Mapping[str, float]

    def validate(self, tolerance: float = 1e-6) -> None:
        """Raise :class:`ValueError` if fractions are negative or do not sum to 1."""
        total = 0.0
        for name, fraction in self.fractions.items():
            if fraction < 0:
                raise ValueError(f"component {name!r} has negative fraction {fraction}")
            total += fraction
        if abs(total - 1.0) > tolerance:
            raise ValueError(f"component fractions sum to {total}, expected 1.0")

    def fraction_of(self, component: str) -> float:
        """Return the fraction for ``component`` (0.0 if absent)."""
        return float(self.fractions.get(component, 0.0))

    def components(self) -> tuple:
        """Return the component names in insertion order."""
        return tuple(self.fractions)

    def absolute_kg(self, total_embodied_kg: float) -> Dict[str, float]:
        """Split ``total_embodied_kg`` across components proportionally."""
        return {
            name: fraction * total_embodied_kg
            for name, fraction in self.fractions.items()
        }


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a device used throughout the library.

    Parameters
    ----------
    name:
        Human-readable device name, e.g. ``"Pixel 3A"``.
    device_class:
        One of :class:`DeviceClass`.
    release_year:
        Year the device was first released; used by lifetime narratives and
        the Figure 1 capability analysis.
    cores:
        Number of CPU cores (vCPUs for cloud instances).
    memory_gib:
        Installed memory in GiB.
    embodied_carbon_kgco2e:
        Manufacturing ("embodied") carbon from the device's life-cycle
        assessment, in kg CO2e.  For a *reused* device the CCI model zeroes
        this out (the manufacturing carbon is treated as already paid), but
        the figure is still needed for the reuse factor and for first-life
        analyses.
    power_model:
        Measured or estimated power draw as a function of CPU utilisation.
    benchmark_suite:
        Geekbench-style scores (Table 1) for the device, if known.
    battery:
        Battery specification for devices that have one.
    components:
        Per-component embodied-carbon breakdown (Table 3 style); optional.
    purchase_price_usd:
        Second-hand or list purchase price used by the economics model.
    geekbench_score:
        Normalised Geekbench score where 1.0 corresponds to an Intel Core i3
        (used for the Figure 1 capability comparison).
    notes:
        Free-form provenance notes (where the numbers came from).
    """

    name: str
    device_class: DeviceClass
    release_year: int
    cores: int
    memory_gib: float
    embodied_carbon_kgco2e: float
    power_model: PowerModel
    benchmark_suite: Optional[BenchmarkSuite] = None
    battery: Optional[BatterySpec] = None
    components: Optional[ComponentBreakdown] = None
    purchase_price_usd: float = 0.0
    geekbench_score: Optional[float] = None
    notes: str = ""
    extra: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"{self.name}: cores must be positive, got {self.cores}")
        if self.memory_gib <= 0:
            raise ValueError(
                f"{self.name}: memory_gib must be positive, got {self.memory_gib}"
            )
        if self.embodied_carbon_kgco2e < 0:
            raise ValueError(
                f"{self.name}: embodied carbon must be non-negative, got "
                f"{self.embodied_carbon_kgco2e}"
            )
        if self.components is not None:
            self.components.validate(tolerance=1e-3)

    @property
    def has_battery(self) -> bool:
        """True if this device carries a usable battery."""
        return self.battery is not None

    @property
    def is_reusable(self) -> bool:
        """True for device classes the paper considers repurposing.

        Cloud instances cannot be "reused" in the junkyard sense because the
        hardware is owned and refreshed by the cloud provider.
        """
        return self.device_class is not DeviceClass.CLOUD_INSTANCE

    def average_power_w(self, load_profile) -> float:
        """Average power draw under ``load_profile`` (see :mod:`repro.devices.power`)."""
        return self.power_model.average_power(load_profile)

    def with_overrides(self, **changes) -> "DeviceSpec":
        """Return a copy of this spec with ``changes`` applied.

        Useful for sensitivity analyses, e.g. replacing the power model with
        a hypothetical more efficient one, or zeroing the embodied carbon.
        """
        return replace(self, **changes)

    def describe(self) -> str:
        """Return a one-line human readable description of the device."""
        battery = (
            f", battery {self.battery.capacity_wh:.1f} Wh" if self.battery else ""
        )
        return (
            f"{self.name} ({self.device_class.value}, {self.release_year}): "
            f"{self.cores} cores, {self.memory_gib:g} GiB, "
            f"{self.embodied_carbon_kgco2e:g} kgCO2e embodied{battery}"
        )
