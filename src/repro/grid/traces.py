"""Grid carbon-intensity traces and a synthetic CAISO-like generator.

The smart-charging study in Section 4.3 of the paper uses public supply data
from the California Independent System Operator (CAISO): per-5-minute
generation by source and the resulting grid carbon intensity for April 2021.
That dataset is not redistributable, so this module provides

* :class:`GridTrace` — a thin container for a timestamped carbon-intensity
  series (plus, optionally, the per-source supply stack behind it), exposing
  the operations the charging and carbon models need (interpolation, daily
  slicing, percentiles, averaging); and
* :class:`CaisoLikeTraceGenerator` — a synthetic generator reproducing the
  structural features the paper's algorithm relies on: a solar "duck curve"
  (generation peaking mid-day), demand peaking in the evening, gas and
  imports filling the residual, carbon intensity therefore anti-correlated
  with solar output, and modest day-to-day variation.

Real CAISO CSV exports can be loaded into the same :class:`GridTrace`
interface via :meth:`GridTrace.from_series`, so every downstream consumer is
agnostic to whether the data is synthetic or measured.
"""

from __future__ import annotations

import csv
import datetime as _datetime
import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import units
from repro.grid import sources as energy_sources

#: Default sampling interval of CAISO supply data (5 minutes).
DEFAULT_INTERVAL_S = 300.0

#: Directory of bundled grid-trace data files shipped with the package.
DATA_DIR = os.path.join(os.path.dirname(__file__), "data")

#: A small checked-in sample of hourly CAISO-style intensities (3 days),
#: in the column layout :meth:`GridTrace.from_csv` defaults to.
CAISO_SAMPLE_CSV = os.path.join(DATA_DIR, "caiso_sample.csv")


def _parse_time_cell(cell: str, column: str, row_number: int) -> float:
    """Parse one time cell: seconds-since-start or an ISO-8601 timestamp."""
    text = cell.strip()
    try:
        seconds = float(text)
    except ValueError:
        pass
    else:
        if not math.isfinite(seconds):
            raise ValueError(
                f"row {row_number}: {column!r} value {cell!r} is not finite"
            )
        return seconds
    try:
        stamp = _datetime.datetime.fromisoformat(text.replace("Z", "+00:00"))
    except ValueError:
        raise ValueError(
            f"row {row_number}: cannot parse {column!r} value {cell!r} as "
            "seconds or an ISO-8601 timestamp"
        ) from None
    if stamp.tzinfo is None:
        stamp = stamp.replace(tzinfo=_datetime.timezone.utc)
    return stamp.timestamp()


@dataclass(frozen=True)
class GridTrace:
    """A time series of grid carbon intensity.

    ``times_s`` are seconds since the start of the trace (uniformly spaced),
    and ``intensity_g_per_kwh`` the corresponding carbon intensities.  The
    optional ``supply_mw`` mapping carries the per-source generation stack
    that produced the intensities (used for plotting Figure 4a-style
    breakdowns).
    """

    times_s: np.ndarray
    intensity_g_per_kwh: np.ndarray
    supply_mw: Mapping[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        times = np.asarray(self.times_s, dtype=float)
        intensity = np.asarray(self.intensity_g_per_kwh, dtype=float)
        if times.ndim != 1 or intensity.ndim != 1:
            raise ValueError("trace arrays must be one-dimensional")
        if len(times) != len(intensity):
            raise ValueError(
                f"times ({len(times)}) and intensities ({len(intensity)}) differ in length"
            )
        if len(times) < 2:
            raise ValueError("a trace requires at least two samples")
        if np.any(np.diff(times) <= 0):
            raise ValueError("trace times must be strictly increasing")
        if np.any(intensity < 0):
            raise ValueError("carbon intensities must be non-negative")
        object.__setattr__(self, "times_s", times)
        object.__setattr__(self, "intensity_g_per_kwh", intensity)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_series(
        cls,
        intensity_g_per_kwh: Sequence[float],
        interval_s: float = DEFAULT_INTERVAL_S,
        supply_mw: Optional[Mapping[str, Sequence[float]]] = None,
    ) -> "GridTrace":
        """Build a trace from a plain intensity sequence at a fixed interval."""
        intensity = np.asarray(intensity_g_per_kwh, dtype=float)
        times = np.arange(len(intensity), dtype=float) * interval_s
        supply = {
            name: np.asarray(values, dtype=float)
            for name, values in (supply_mw or {}).items()
        }
        return cls(times_s=times, intensity_g_per_kwh=intensity, supply_mw=supply)

    @classmethod
    def from_csv(
        cls,
        path: str,
        time_col: str = "timestamp",
        intensity_col: str = "intensity_gco2_per_kwh",
    ) -> "GridTrace":
        """Load a trace from a CSV export (CAISO/ERCOT/BPA style).

        ``time_col`` may hold either numeric seconds or ISO-8601 timestamps
        (naive stamps are treated as UTC); times are re-based so the trace
        starts at 0 s.  ``intensity_col`` holds gCO2e/kWh.  Rows must be in
        chronological order; malformed cells and missing columns raise
        :class:`ValueError` naming the offending column and row.
        """
        times: List[float] = []
        intensities: List[float] = []
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            header = reader.fieldnames or []
            for column in (time_col, intensity_col):
                if column not in header:
                    raise ValueError(
                        f"{os.path.basename(path)}: missing column {column!r}; "
                        f"found columns: {', '.join(header) or '(none)'}"
                    )
            for row_number, row in enumerate(reader, start=2):
                time_cell = row[time_col]
                intensity_cell = row[intensity_col]
                if time_cell is None or intensity_cell is None:
                    raise ValueError(f"row {row_number}: short row")
                times.append(_parse_time_cell(time_cell, time_col, row_number))
                try:
                    intensity = float(intensity_cell)
                except ValueError:
                    raise ValueError(
                        f"row {row_number}: cannot parse {intensity_col!r} "
                        f"value {intensity_cell!r} as a number"
                    ) from None
                if not math.isfinite(intensity):
                    raise ValueError(
                        f"row {row_number}: {intensity_col!r} value "
                        f"{intensity_cell!r} is not finite"
                    )
                intensities.append(intensity)
        if len(times) < 2:
            raise ValueError(
                f"{os.path.basename(path)}: a trace requires at least two data rows"
            )
        series = np.asarray(times) - times[0]
        # GridTrace's interval_s/period_s/wrap-around math assumes uniform
        # sampling; a gapped export (DST jump, data outage) must fail loudly
        # rather than silently skew every wrapped lookup.
        gaps = np.diff(series)
        if gaps.size and not np.allclose(gaps, gaps[0], rtol=1e-6, atol=1e-6):
            bad = int(np.argmax(np.abs(gaps - gaps[0]) > 1e-6 * max(1.0, abs(gaps[0]))))
            raise ValueError(
                f"{os.path.basename(path)}: rows must be uniformly spaced; "
                f"expected {gaps[0]:.0f} s between samples but row "
                f"{bad + 3} is {gaps[bad]:.0f} s after its predecessor"
            )
        return cls(
            times_s=series,
            intensity_g_per_kwh=np.asarray(intensities),
        )

    @classmethod
    def constant(
        cls,
        intensity_g_per_kwh: float,
        duration_s: float = units.SECONDS_PER_DAY,
        interval_s: float = DEFAULT_INTERVAL_S,
    ) -> "GridTrace":
        """A flat trace, useful for fixed energy-mix scenarios and tests."""
        n_samples = max(2, int(round(duration_s / interval_s)))
        return cls.from_series([intensity_g_per_kwh] * n_samples, interval_s=interval_s)

    @classmethod
    def concatenate(cls, traces: Sequence["GridTrace"]) -> "GridTrace":
        """Concatenate traces end-to-end, shifting their time bases."""
        if not traces:
            raise ValueError("cannot concatenate an empty list of traces")
        times: List[np.ndarray] = []
        intensities: List[np.ndarray] = []
        offset = 0.0
        for trace in traces:
            times.append(trace.times_s + offset)
            intensities.append(trace.intensity_g_per_kwh)
            offset += trace.duration_s + trace.interval_s
        supply: Dict[str, np.ndarray] = {}
        common = set(traces[0].supply_mw)
        for trace in traces[1:]:
            common &= set(trace.supply_mw)
        for name in sorted(common):
            supply[name] = np.concatenate([trace.supply_mw[name] for trace in traces])
        return cls(
            times_s=np.concatenate(times),
            intensity_g_per_kwh=np.concatenate(intensities),
            supply_mw=supply,
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.times_s)

    @property
    def interval_s(self) -> float:
        """Sampling interval, assuming uniform spacing."""
        return float(self.times_s[1] - self.times_s[0])

    @property
    def duration_s(self) -> float:
        """Time span covered by the trace."""
        return float(self.times_s[-1] - self.times_s[0])

    @property
    def n_days(self) -> int:
        """Number of whole days the trace covers (rounded to nearest)."""
        return int(round((self.duration_s + self.interval_s) / units.SECONDS_PER_DAY))

    def mean_intensity(self) -> float:
        """Time-averaged carbon intensity (gCO2e/kWh)."""
        return float(np.mean(self.intensity_g_per_kwh))

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile of the intensity distribution (p in [0, 100])."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be within [0, 100], got {p}")
        return float(np.percentile(self.intensity_g_per_kwh, p))

    @property
    def period_s(self) -> float:
        """Length of one tiling period when the trace repeats end-to-end.

        One interval longer than :attr:`duration_s`, so that a
        midnight-to-midnight daily trace (samples at 0 .. 86100 s) tiles
        seamlessly: the sample after 86100 s is the next period's 0 s.
        """
        return self.duration_s + self.interval_s

    def intensity_at(self, time_s: float, wrap: bool = False) -> float:
        """Carbon intensity at an arbitrary time, via linear interpolation.

        With ``wrap=False`` times outside the trace are clamped to the
        first/last sample.  With ``wrap=True`` the trace repeats with period
        :attr:`period_s`, so long-horizon simulations (e.g. a fleet year)
        can reuse a month-long trace; the seam between the last sample and
        the repeated first sample is linearly interpolated.
        """
        return float(self.intensities_at(np.asarray(time_s, dtype=float), wrap=wrap))

    def intensities_at(self, times_s: np.ndarray, wrap: bool = False) -> np.ndarray:
        """Vectorized :meth:`intensity_at` for an array of query times."""
        times = np.asarray(times_s, dtype=float)
        if wrap:
            times = np.mod(times - self.times_s[0], self.period_s) + self.times_s[0]
            xs, ys = self._wrap_samples()
            return np.interp(times, xs, ys)
        return np.interp(times, self.times_s, self.intensity_g_per_kwh)

    def _wrap_samples(self) -> Tuple[np.ndarray, np.ndarray]:
        """Seam-bridged sample arrays for wrap-around interpolation, cached.

        One virtual sample at the period end equal to the first sample makes
        interpolation wrap instead of clamping.  The trace is immutable, so
        the bridged copies are built once (per-request DES routing queries
        the same trace thousands of times).
        """
        cached = getattr(self, "_wrap_cache", None)
        if cached is None:
            cached = (
                np.append(self.times_s, self.times_s[0] + self.period_s),
                np.append(self.intensity_g_per_kwh, self.intensity_g_per_kwh[0]),
            )
            object.__setattr__(self, "_wrap_cache", cached)
        return cached

    # ------------------------------------------------------------------
    # Slicing
    # ------------------------------------------------------------------

    def slice(self, start_s: float, end_s: float) -> "GridTrace":
        """Return the sub-trace covering ``[start_s, end_s)`` (times re-based to 0)."""
        if end_s <= start_s:
            raise ValueError("end must be after start")
        mask = (self.times_s >= start_s) & (self.times_s < end_s)
        if int(np.count_nonzero(mask)) < 2:
            raise ValueError("requested slice contains fewer than two samples")
        supply = {name: values[mask] for name, values in self.supply_mw.items()}
        return GridTrace(
            times_s=self.times_s[mask] - start_s,
            intensity_g_per_kwh=self.intensity_g_per_kwh[mask],
            supply_mw=supply,
        )

    def day(self, index: int) -> "GridTrace":
        """Return the trace for day ``index`` (0-based)."""
        if index < 0 or index >= self.n_days:
            raise IndexError(f"day index {index} out of range for {self.n_days}-day trace")
        start = index * units.SECONDS_PER_DAY
        return self.slice(start, start + units.SECONDS_PER_DAY)

    def days(self) -> Tuple["GridTrace", ...]:
        """Split the trace into per-day sub-traces."""
        return tuple(self.day(i) for i in range(self.n_days))

    # ------------------------------------------------------------------
    # Carbon accounting
    # ------------------------------------------------------------------

    def carbon_for_power_profile(
        self, power_w: np.ndarray, interval_s: Optional[float] = None
    ) -> float:
        """Total carbon (g) for a power series sampled at the trace's interval.

        ``power_w`` must have the same length as the trace (or a scalar), and
        is interpreted as the average power drawn during each interval.
        """
        interval = self.interval_s if interval_s is None else interval_s
        power = np.broadcast_to(np.asarray(power_w, dtype=float), self.intensity_g_per_kwh.shape)
        if np.any(power < 0):
            raise ValueError("power draw must be non-negative")
        energy_kwh = power * interval / units.JOULES_PER_KWH
        return float(np.sum(energy_kwh * self.intensity_g_per_kwh))

    def carbon_for_constant_power(self, power_w: float) -> float:
        """Total carbon (g) for drawing ``power_w`` constantly over the trace."""
        return self.carbon_for_power_profile(np.full(len(self), power_w))


@dataclass(frozen=True)
class CaisoLikeTraceGenerator:
    """Generates synthetic CAISO-style supply stacks and carbon intensities.

    The generator models Californian spring conditions (the paper studies
    April 2021): a large mid-day solar hump, modest wind with a nocturnal
    bias, flat nuclear/geothermal baseload, hydro following demand, and gas
    plus imports supplying the residual, which peaks in the evening when the
    sun sets but demand has not yet fallen — producing the characteristic
    anti-correlation between solar output and grid carbon intensity.

    All magnitudes are in GW and are tunable; the defaults land the mean
    carbon intensity close to the paper's 257 gCO2e/kWh Californian average.
    """

    seed: int = 2021
    interval_s: float = DEFAULT_INTERVAL_S
    base_demand_gw: float = 22.0
    evening_peak_gw: float = 6.0
    solar_peak_gw: float = 8.0
    solar_hours: Tuple[float, float] = (6.5, 19.5)
    wind_mean_gw: float = 3.0
    hydro_gw: float = 2.8
    nuclear_gw: float = 2.2
    geothermal_gw: float = 1.0
    day_to_day_sigma: float = 0.12
    noise_sigma: float = 0.04

    def _hours(self) -> np.ndarray:
        samples_per_day = int(round(units.SECONDS_PER_DAY / self.interval_s))
        return np.arange(samples_per_day) * self.interval_s / units.SECONDS_PER_HOUR

    def generate_day(self, day_index: int = 0) -> GridTrace:
        """Generate one synthetic day (midnight-to-midnight) of supply data."""
        rng = np.random.default_rng((self.seed, day_index))
        hours = self._hours()
        n = len(hours)

        day_scale = float(
            np.clip(1.0 + rng.normal(0.0, self.day_to_day_sigma), 0.6, 1.4)
        )
        cloud_factor = float(np.clip(1.0 + rng.normal(0.0, self.day_to_day_sigma), 0.4, 1.3))

        # Demand: morning ramp, mid-day plateau, evening peak around 19:00.
        demand = (
            self.base_demand_gw
            + 2.0 * np.exp(-0.5 * ((hours - 9.0) / 2.5) ** 2)
            + self.evening_peak_gw * np.exp(-0.5 * ((hours - 19.5) / 2.2) ** 2)
        )
        demand *= 1.0 + rng.normal(0.0, self.noise_sigma, size=n) * 0.5
        demand = np.clip(demand, 15.0, None)

        # Solar: half-sine between sunrise and sunset, scaled by cloud cover.
        sunrise, sunset = self.solar_hours
        daylight = np.clip((hours - sunrise) / (sunset - sunrise), 0.0, 1.0)
        solar = self.solar_peak_gw * cloud_factor * np.sin(np.pi * daylight) ** 2
        solar = np.clip(solar + rng.normal(0.0, 0.15, size=n), 0.0, None)

        # Wind: noisy, slightly stronger at night.
        wind = self.wind_mean_gw * day_scale * (
            1.0 + 0.35 * np.cos(2.0 * np.pi * (hours - 2.0) / 24.0)
        )
        wind = np.clip(wind + rng.normal(0.0, 0.25, size=n), 0.2, None)

        hydro = np.full(n, self.hydro_gw * day_scale)
        nuclear = np.full(n, self.nuclear_gw)
        geothermal = np.full(n, self.geothermal_gw)

        residual = demand - (solar + wind + hydro + nuclear + geothermal)
        # CAISO never dispatches below a few GW of thermal + import supply even
        # at the solar peak (minimum generation constraints), which keeps the
        # mid-day carbon-intensity floor around 120-170 gCO2e/kWh.
        residual = np.clip(residual, 3.0, None)
        # Imports take roughly 40 % of the residual, gas the rest.
        imports = 0.40 * residual
        gas = residual - imports

        supply = {
            "solar": solar,
            "wind": wind,
            "hydro": hydro,
            "nuclear": nuclear,
            "geothermal": geothermal,
            "natural gas": gas,
            "imports": imports,
        }
        intensity = np.array(
            [
                energy_sources.blended_intensity(
                    {name: values[i] for name, values in supply.items()}
                )
                for i in range(n)
            ]
        )
        times = np.arange(n, dtype=float) * self.interval_s
        return GridTrace(times_s=times, intensity_g_per_kwh=intensity, supply_mw=supply)

    def generate_days(self, n_days: int, start_day: int = 0) -> GridTrace:
        """Generate ``n_days`` consecutive synthetic days as a single trace."""
        if n_days <= 0:
            raise ValueError("n_days must be positive")
        days = [self.generate_day(start_day + i) for i in range(n_days)]
        return GridTrace.concatenate(days)

    def generate_month(self, n_days: int = 30, start_day: int = 0) -> GridTrace:
        """Generate a month-long trace (30 days by default, like April 2021)."""
        return self.generate_days(n_days, start_day=start_day)
