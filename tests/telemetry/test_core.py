"""Span nesting, counter, and null-object invariants for repro.telemetry."""

import pytest

from repro.telemetry import NULL_TELEMETRY, NullTelemetry, Telemetry, ensure_telemetry


def test_nested_spans_record_full_paths_and_depths():
    tele = Telemetry()
    with tele.span("scenario"):
        with tele.span("main_run"):
            with tele.span("dispatch_day"):
                pass
            with tele.span("dispatch_day"):
                pass
        with tele.span("economics"):
            pass
    paths = [span.path for span in tele.spans]
    assert paths == [
        "scenario/main_run/dispatch_day",
        "scenario/main_run/dispatch_day",
        "scenario/main_run",
        "scenario/economics",
        "scenario",
    ]
    assert [span.depth for span in tele.spans] == [3, 3, 2, 2, 1]


def test_spans_complete_children_before_parents():
    tele = Telemetry()
    with tele.span("outer"):
        with tele.span("inner"):
            pass
    by_path = {span.path: span for span in tele.spans}
    assert by_path["outer/inner"].index < by_path["outer"].index
    # Completion order is the list order and the index order.
    assert [span.index for span in tele.spans] == [0, 1]


def test_span_timing_is_sane():
    tele = Telemetry()
    with tele.span("outer"):
        with tele.span("inner"):
            pass
    inner = next(s for s in tele.spans if s.name == "inner")
    outer = next(s for s in tele.spans if s.name == "outer")
    assert inner.duration_s >= 0
    assert outer.duration_s >= inner.duration_s
    assert outer.start_s <= inner.start_s
    assert inner.end_s <= outer.end_s + 1e-9
    assert tele.wall_s() >= outer.end_s


def test_span_name_rejects_separators_and_empty():
    tele = Telemetry()
    with pytest.raises(ValueError):
        tele.span("a/b")
    with pytest.raises(ValueError):
        tele.span("")


def test_phase_totals_aggregate_by_full_path():
    tele = Telemetry()
    for _ in range(3):
        with tele.span("main_run"):
            with tele.span("step"):
                pass
    with tele.span("twin"):
        with tele.span("step"):
            pass
    totals = tele.phase_totals()
    assert totals["main_run/step"][0] == 3
    assert totals["twin/step"][0] == 1
    assert totals["main_run"][0] == 3
    # Identical leaf names under different parents never blur.
    assert "step" not in totals


def test_counters_are_monotonic_and_reject_negative_increments():
    tele = Telemetry()
    tele.count("hits")
    tele.count("hits", 2)
    tele.count("energy_kwh", 0.5)
    assert tele.counters == {"hits": 3, "energy_kwh": 0.5}
    with pytest.raises(ValueError):
        tele.count("hits", -1)


def test_gauges_are_last_write_wins():
    tele = Telemetry()
    tele.gauge("n_devices", 100)
    tele.gauge("n_devices", 250)
    assert tele.gauges == {"n_devices": 250}


def test_add_child_folds_counters_and_keeps_manifest():
    tele = Telemetry()
    tele.count("cells", 1)
    child = {"name": "cell-a", "counters": {"cells": 2, "spans": 7}}
    tele.add_child(child)
    assert tele.counters == {"cells": 3, "spans": 7}
    assert tele.children == [child]


def test_null_telemetry_is_inert_and_shared():
    null = NULL_TELEMETRY
    assert isinstance(null, NullTelemetry)
    assert null.enabled is False
    span = null.span("anything")
    with span:
        with null.span("nested"):
            pass
    # One shared re-entrant handle, nothing recorded anywhere.
    assert null.span("other") is span
    null.count("ignored", 5)
    null.gauge("ignored", 5)
    null.add_child({"counters": {"x": 1}})
    assert list(null.iter_spans()) == []
    assert null.phase_totals() == {}
    assert dict(null.counters) == {}
    assert dict(null.gauges) == {}
    assert list(null.children) == []
    assert null.wall_s() == 0.0


def test_ensure_telemetry_normalises_none():
    assert ensure_telemetry(None) is NULL_TELEMETRY
    tele = Telemetry()
    assert ensure_telemetry(tele) is tele


# ---------------------------------------------------------------------------
# Batched spans: one span standing for many logical invocations
# ---------------------------------------------------------------------------


def test_span_calls_scale_phase_totals():
    tele = Telemetry()
    with tele.span("dispatch_day", calls=366):
        pass
    with tele.span("dispatch_day", calls=366):
        pass
    calls, total = tele.phase_totals()["dispatch_day"]
    assert calls == 732
    assert total >= 0.0
    assert all(span.calls == 366 for span in tele.iter_spans())


def test_zero_call_span_folds_setup_time_without_invocations():
    tele = Telemetry()
    with tele.span("allocate_day", calls=0):
        pass
    for _ in range(3):
        with tele.span("allocate_day"):
            pass
    calls, _ = tele.phase_totals()["allocate_day"]
    assert calls == 3


def test_span_calls_default_to_one_and_reject_negatives():
    tele = Telemetry()
    with tele.span("phase"):
        pass
    assert tele.spans[0].calls == 1
    with pytest.raises(ValueError, match="calls"):
        tele.span("phase", calls=-1)
