"""Unit-conversion helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


def test_kwh_joule_round_trip():
    assert units.joules_to_kwh(units.kwh_to_joules(3.7)) == pytest.approx(3.7)


def test_one_kwh_is_3_6_megajoules():
    assert units.kwh_to_joules(1.0) == pytest.approx(3.6e6)


def test_wh_to_joules():
    assert units.wh_to_joules(1.0) == pytest.approx(3_600.0)
    assert units.joules_to_wh(7_200.0) == pytest.approx(2.0)


def test_watts_for_duration():
    assert units.watts_for_duration_joules(10.0, 60.0) == pytest.approx(600.0)
    assert units.watts_for_duration_kwh(1_000.0, 3_600.0) == pytest.approx(1.0)


def test_month_conversions_consistent():
    assert units.months_to_seconds(12.0) == pytest.approx(units.SECONDS_PER_YEAR, rel=1e-3)
    assert units.seconds_to_months(units.months_to_seconds(7.5)) == pytest.approx(7.5)
    assert units.months_to_hours(1.0) == pytest.approx(units.HOURS_PER_MONTH)


def test_years_to_months():
    assert units.years_to_months(3.0) == pytest.approx(36.0)


def test_mass_conversions():
    assert units.kg_to_grams(2.5) == pytest.approx(2_500.0)
    assert units.grams_to_kg(500.0) == pytest.approx(0.5)
    assert units.grams_to_milligrams(0.25) == pytest.approx(250.0)


def test_network_rate_conversions():
    assert units.mbit_per_s_to_bytes_per_s(8.0) == pytest.approx(1e6)
    assert units.gbit_per_s_to_bytes_per_s(1.0) == pytest.approx(1.25e8)


def test_battery_capacity_conversion():
    # 3 Ah at ~4.17 V nominal is the paper's 45 kJ Pixel 3A pack.
    wh = units.ah_to_wh(3.0, 4.17)
    assert units.wh_to_joules(wh) == pytest.approx(45_036.0, rel=1e-3)


def test_temperature_conversions():
    assert units.celsius_to_kelvin(25.0) == pytest.approx(298.15)
    assert units.kelvin_to_celsius(units.celsius_to_kelvin(60.0)) == pytest.approx(60.0)


@given(st.floats(min_value=0.0, max_value=1e9, allow_nan=False))
def test_energy_round_trip_property(kwh):
    assert units.joules_to_kwh(units.kwh_to_joules(kwh)) == pytest.approx(kwh, rel=1e-12, abs=1e-9)


@given(st.floats(min_value=0.0, max_value=1e6), st.floats(min_value=0.0, max_value=1e7))
def test_energy_is_bilinear_in_power_and_time(power, duration):
    double_power = units.watts_for_duration_joules(2 * power, duration)
    assert double_power == pytest.approx(2 * units.watts_for_duration_joules(power, duration))
