"""Discrete-event simulation engine: processes, resources, metrics, RNG streams."""

from repro.simulation.engine import AllOf, Process, Simulator, Timeout, Waitable
from repro.simulation.metrics import (
    LatencyRecorder,
    LatencySummary,
    UtilizationTimeline,
    summarize,
)
from repro.simulation.random_streams import RandomStreams
from repro.simulation.resources import (
    CpuResource,
    LocalLoopback,
    NetworkMedium,
    Resource,
)

__all__ = [
    "Simulator",
    "Process",
    "Timeout",
    "AllOf",
    "Waitable",
    "Resource",
    "CpuResource",
    "NetworkMedium",
    "LocalLoopback",
    "LatencyRecorder",
    "LatencySummary",
    "UtilizationTimeline",
    "summarize",
    "RandomStreams",
]
