"""Microservice serving layer: applications, placement, and cluster simulation."""

from repro.microservices.apps import (
    COMPOSE_POST,
    COMPOSE_REVIEW,
    HOTEL_MIXED_WORKLOAD,
    READ_HOME_TIMELINE,
    READ_MOVIE_REVIEWS,
    READ_USER_TIMELINE,
    RECOMMEND,
    RESERVE,
    SEARCH_HOTEL,
    USER_LOGIN,
    hotel_reservation,
    media_reviewing,
    social_network,
)
from repro.microservices.cluster import (
    EXTERNAL_CLIENT,
    NodeSpec,
    RunResult,
    ServingCluster,
    ec2_instance,
    pixel_cloudlet,
)
from repro.microservices.placement import (
    Placement,
    round_robin_placement,
    single_node_placement,
    swarm_placement,
)
from repro.microservices.service_graph import (
    Application,
    CallNode,
    Microservice,
    RequestType,
)
from repro.microservices.sweep import (
    SweepPoint,
    SweepResult,
    latency_throughput_sweep,
    saturation_qps,
)

__all__ = [
    "Application",
    "Microservice",
    "CallNode",
    "RequestType",
    "social_network",
    "hotel_reservation",
    "media_reviewing",
    "COMPOSE_POST",
    "READ_USER_TIMELINE",
    "READ_HOME_TIMELINE",
    "SEARCH_HOTEL",
    "RECOMMEND",
    "RESERVE",
    "USER_LOGIN",
    "COMPOSE_REVIEW",
    "READ_MOVIE_REVIEWS",
    "HOTEL_MIXED_WORKLOAD",
    "Placement",
    "swarm_placement",
    "single_node_placement",
    "round_robin_placement",
    "NodeSpec",
    "ServingCluster",
    "RunResult",
    "pixel_cloudlet",
    "ec2_instance",
    "EXTERNAL_CLIENT",
    "SweepPoint",
    "SweepResult",
    "latency_throughput_sweep",
    "saturation_qps",
]
