"""Table 1 — Geekbench scores and server-equivalence counts."""

from repro.analysis.report import render_table1
from repro.analysis.tables import table1_geekbench


def test_table1_geekbench(benchmark, report):
    rows = benchmark(table1_geekbench)
    report("Table 1: Geekbench performance and N", render_table1(rows))
    by_device = {row.device: row for row in rows}
    # Key paper facts: 54 Pixel 3As or ~256 Nexus 4s match a PowerEdge on SGEMM.
    assert by_device["Pixel 3A"].devices_needed["SGEMM"] == 54
    assert by_device["Nexus 4"].devices_needed["SGEMM"] in (255, 256)
    assert by_device["PowerEdge R740"].devices_needed["SGEMM"] == 1
