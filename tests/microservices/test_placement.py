"""Service placement strategies."""

import pytest

from repro.microservices.apps import social_network
from repro.microservices.placement import (
    Placement,
    round_robin_placement,
    single_node_placement,
    swarm_placement,
)
from repro.microservices.service_graph import Application, Microservice


@pytest.fixture(scope="module")
def sn():
    return social_network()


def test_single_node_places_everything_on_one_node(sn):
    placement = single_node_placement(sn, "c5.9xlarge")
    placement.validate_against(sn)
    assert placement.nodes_used() == ("c5.9xlarge",)
    assert len(placement.services_on("c5.9xlarge")) == len(sn.services)


def test_round_robin_spreads_services(sn):
    nodes = [f"phone-{i}" for i in range(10)]
    placement = round_robin_placement(sn, nodes)
    placement.validate_against(sn)
    counts = [len(placement.services_on(node)) for node in nodes]
    assert max(counts) - min(counts) <= 1


def test_swarm_placement_honours_groups(sn):
    nodes = [f"phone-{i}" for i in range(10)]
    placement = swarm_placement(sn, nodes)
    placement.validate_against(sn)
    # The first Figure 8 group lands together on the first node.
    first_group = sn.placement_groups[0]
    hosts = {placement.node_for(service) for service in first_group}
    assert hosts == {"phone-0"}
    # nginx and the user-timeline service co-locate (the panel-C grouping).
    assert placement.node_for("nginx-web-server") == placement.node_for(
        "user-timeline-service"
    )


def test_swarm_placement_wraps_when_fewer_nodes(sn):
    nodes = ["phone-0", "phone-1", "phone-2"]
    placement = swarm_placement(sn, nodes)
    placement.validate_against(sn)
    assert set(placement.nodes_used()) <= set(nodes)


def test_swarm_placement_spreads_ungrouped_by_memory():
    app = Application(
        name="tiny",
        services={
            "grouped": Microservice("grouped", memory_mb=64),
            "big": Microservice("big", memory_mb=512),
            "small": Microservice("small", memory_mb=32),
        },
        request_types={},
        placement_groups=(("grouped",),),
    )
    placement = swarm_placement(app, ["n0", "n1"])
    # The big ungrouped service avoids the node that already hosts the group
    # only if that balances memory; either way all services are placed.
    placement.validate_against(app)
    assert placement.node_for("grouped") == "n0"


def test_placement_lookup_errors(sn):
    placement = single_node_placement(sn, "node")
    with pytest.raises(KeyError):
        placement.node_for("not-a-service")
    incomplete = Placement(assignment={"nginx-web-server": "node"})
    with pytest.raises(ValueError):
        incomplete.validate_against(sn)


def test_memory_by_node_sums_to_total(sn):
    nodes = [f"phone-{i}" for i in range(10)]
    placement = swarm_placement(sn, nodes)
    assert sum(placement.memory_by_node(sn).values()) == pytest.approx(sn.total_memory_mb())


def test_empty_node_list_rejected(sn):
    with pytest.raises(ValueError):
        swarm_placement(sn, [])
    with pytest.raises(ValueError):
        round_robin_placement(sn, [])
