"""Figure 6 — the impact of the energy mix on CCI."""

from repro.analysis.figures import fig6_energy_mix
from repro.analysis.report import render_lifetime_sweep


def test_fig6_energy_mix(benchmark, report):
    sweep = benchmark(fig6_energy_mix)
    report("Figure 6: energy mix vs CCI (SGEMM)", render_lifetime_sweep(sweep))

    # Cleaner grids monotonically lower CCI for both systems.
    assert (
        sweep.at("[Pixel] zero carbon", 36.0)
        <= sweep.at("[Pixel] 24/7 solar", 36.0)
        <= sweep.at("[Pixel] California", 36.0)
    )
    assert (
        sweep.at("[Server] zero carbon", 36.0)
        <= sweep.at("[Server] 24/7 solar", 36.0)
        <= sweep.at("[Server] California", 36.0)
    )
    # With a zero-carbon supply the reused phone's CCI collapses to zero while
    # the new server still pays its manufacturing carbon — the paper's point
    # that embodied carbon dominates as operation trends to zero.
    assert sweep.at("[Pixel] zero carbon", 36.0) == 0.0
    assert sweep.at("[Server] zero carbon", 36.0) > 0.0
    # The phone beats the server under every mix.
    for mix in ("California", "24/7 solar", "zero carbon"):
        assert sweep.at(f"[Pixel] {mix}", 36.0) < sweep.at(f"[Server] {mix}", 36.0)
