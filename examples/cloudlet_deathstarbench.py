#!/usr/bin/env python3
"""Serve DeathStarBench-style applications on a simulated phone cloudlet.

Reproduces the Section 6 experiment end to end at small scale: a ten-Pixel-3A
cloudlet and a c5.9xlarge serve the SocialNetwork and HotelReservation
applications, latency curves are swept, saturation points are extracted, and
the carbon-per-request comparison of Figure 9 is computed from the results.

Run with ``python examples/cloudlet_deathstarbench.py`` (takes a minute or
two — it simulates tens of thousands of requests).
"""

from repro.analysis.figures import fig9_request_cci
from repro.analysis.report import format_table
from repro.microservices import (
    COMPOSE_POST,
    HOTEL_MIXED_WORKLOAD,
    READ_USER_TIMELINE,
    ec2_instance,
    hotel_reservation,
    latency_throughput_sweep,
    pixel_cloudlet,
    social_network,
)

WORKLOADS = {
    "SocialNetwork-Write": (social_network(), {COMPOSE_POST: 1.0}, (500, 1500, 2500, 3000)),
    "SocialNetwork-Read": (social_network(), {READ_USER_TIMELINE: 1.0}, (1000, 2500, 3500)),
    "HotelReservation": (hotel_reservation(), dict(HOTEL_MIXED_WORKLOAD), (1000, 2500, 3500)),
}


def show_placement(cluster, app) -> None:
    placement = cluster.default_placement(app)
    rows = [
        [node, ", ".join(placement.services_on(node)[:4])]
        for node in cluster.node_names
    ]
    print(f"Swarm placement of {app.name} on {cluster.name}:")
    print(format_table(["Node", "Services (first 4)"], rows))
    print()


def sweep_workloads() -> dict:
    phones = pixel_cloudlet()
    ec2 = ec2_instance()
    show_placement(phones, social_network())

    saturation = {}
    for workload_name, (app, mix, qps_values) in WORKLOADS.items():
        for cluster in (phones, ec2):
            sweep = latency_throughput_sweep(
                cluster,
                app,
                mix,
                qps_values=qps_values,
                workload_name=workload_name,
                duration_s=1.5,
                warmup_s=0.3,
            )
            rows = [
                [
                    f"{point.offered_qps:.0f}",
                    f"{point.median_ms:.1f}",
                    f"{point.tail_ms:.1f}",
                    f"{point.completion_ratio:.2f}",
                ]
                for point in sweep.points
            ]
            print(f"{workload_name} on {cluster.name}:")
            print(format_table(["Offered QPS", "Median ms", "p90 ms", "Completion"], rows))
            saturation[(workload_name, cluster.name)] = sweep.saturation_qps()
            print()
    return saturation


def carbon_per_request() -> None:
    data = fig9_request_cci(months=[12.0, 36.0, 60.0])
    rows = [
        [workload, f"{data.improvement_at(workload, 36.0):.1f}x"]
        for workload in data.sweeps
    ]
    print("Carbon-per-request advantage of the cloudlet after 3 years (Figure 9):")
    print(format_table(["Workload", "Phones vs c5.9xlarge"], rows))


def main() -> None:
    saturation = sweep_workloads()
    print("Measured saturation throughputs (requests/second):")
    rows = [[f"{w} @ {c}", f"{qps:.0f}"] for (w, c), qps in saturation.items()]
    print(format_table(["Deployment", "Usable QPS"], rows))
    print()
    carbon_per_request()


if __name__ == "__main__":
    main()
