"""Cloudlet-scale carbon designs (Figure 5)."""

import numpy as np
import pytest

from repro.cluster.cloudlet import (
    CloudletDesign,
    nexus4_cloudlet_design,
    paper_cloudlets,
    pixel_cloudlet_design,
    poweredge_baseline,
    proliant_cloudlet,
    thinkpad_cloudlet,
)
from repro.cluster.peripherals import PeripheralSet
from repro.cluster.topology import wired_topology
from repro.core.lifetime import crossover_month, default_lifetimes
from repro.devices.benchmarks import DIJKSTRA, PDF_RENDER, SGEMM
from repro.devices.catalog import PIXEL_3A, POWEREDGE_R740
from repro.grid.mix import california, solar_24_7, zero_carbon


@pytest.fixture(scope="module")
def california_designs():
    return paper_cloudlets(SGEMM, regime="california")


class TestDesignConstruction:
    def test_paper_cloudlet_sizes_for_sgemm(self, california_designs):
        assert california_designs["PowerEdge R740"].n_devices == 1
        assert california_designs["ProLiant"].n_devices == 20
        assert california_designs["ThinkPad"].n_devices == 17
        assert california_designs["Pixel 3A"].n_devices == 54
        assert california_designs["Nexus 4"].n_devices in (255, 256)

    def test_nexus_cloudlet_consumes_more_power_than_poweredge(self, california_designs):
        # Paper: the Nexus 4 cluster draws ~456 W of device power, more than
        # the 309 W PowerEdge, yet still wins on carbon for short lifetimes.
        nexus = california_designs["Nexus 4"]
        server = california_designs["PowerEdge R740"]
        assert nexus.n_devices * nexus.device_average_power_w > server.total_average_power_w

    def test_pixel_cloudlet_device_power_near_84w(self, california_designs):
        pixel = california_designs["Pixel 3A"]
        assert pixel.n_devices * pixel.device_average_power_w == pytest.approx(83, abs=2)

    def test_smartphone_designs_have_fans_and_plugs(self, california_designs):
        pixel = california_designs["Pixel 3A"]
        assert pixel.peripherals.total_embodied_kg > 0
        assert pixel.smart_charging
        assert pixel.include_battery_replacement

    def test_solar_regime_drops_plugs_and_batteries(self):
        designs = paper_cloudlets(SGEMM, regime="solar")
        pixel = designs["Pixel 3A"]
        assert not pixel.smart_charging
        assert not pixel.include_battery_replacement
        # Only the cooling fan remains.
        assert pixel.peripherals.total_embodied_kg == pytest.approx(9.3)

    def test_unknown_regime_rejected(self):
        with pytest.raises(ValueError):
            paper_cloudlets(SGEMM, regime="mars")

    def test_validation(self):
        with pytest.raises(ValueError):
            CloudletDesign(
                name="bad",
                device=PIXEL_3A,
                n_devices=0,
                energy_mix=california(),
                topology=wired_topology(),
            )
        with pytest.raises(ValueError):
            CloudletDesign(
                name="bad",
                device=POWEREDGE_R740,
                n_devices=1,
                energy_mix=california(),
                topology=wired_topology(),
                smart_charging=True,
            )


class TestCarbonBehaviour:
    def test_reused_designs_have_no_device_embodied_carbon(self, california_designs):
        proliant = california_designs["ProLiant"]
        assert proliant.embodied_carbon_g(36.0) == 0.0

    def test_new_server_pays_embodied(self, california_designs):
        server = california_designs["PowerEdge R740"]
        assert server.carbon_components(36.0).embodied_g == pytest.approx(3.0e6)

    def test_battery_replacement_grows_stepwise(self, california_designs):
        pixel = california_designs["Pixel 3A"]
        early = pixel.embodied_carbon_g(12.0)
        late = pixel.embodied_carbon_g(40.0)
        assert late > early

    def test_networking_term_positive_and_small(self, california_designs):
        pixel = california_designs["Pixel 3A"]
        components = pixel.carbon_components(36.0)
        assert 0 < components.networking_g < components.operational_g

    def test_throughput_matches_or_exceeds_baseline(self, california_designs):
        server = california_designs["PowerEdge R740"]
        for name in ("Pixel 3A", "ThinkPad", "ProLiant"):
            assert california_designs[name].throughput(SGEMM) >= server.throughput(SGEMM)

    def test_with_energy_mix_returns_copy(self, california_designs):
        pixel = california_designs["Pixel 3A"]
        solar = pixel.with_energy_mix(solar_24_7())
        assert solar.energy_mix.name == "24/7 solar"
        assert pixel.energy_mix.name == "California"


class TestFigure5Shape:
    def test_pixel_always_beats_new_server(self, california_designs):
        months = default_lifetimes()
        pixel = california_designs["Pixel 3A"].cci_series(SGEMM, months)
        server = california_designs["PowerEdge R740"].cci_series(SGEMM, months)
        assert np.all(pixel < server)

    def test_nexus_crossover_in_paper_range(self, california_designs):
        # Paper: the Nexus 4 cluster is more carbon-efficient than a new
        # PowerEdge for SGEMM only for lifetimes below ~45 months.
        months = default_lifetimes()
        nexus = california_designs["Nexus 4"].cci_series(SGEMM, months)
        server = california_designs["PowerEdge R740"].cci_series(SGEMM, months)
        crossover = crossover_month(months, nexus, server)
        assert crossover is not None
        assert 30 <= crossover <= 60

    def test_old_server_is_worst_for_pdf_render(self):
        designs = paper_cloudlets(PDF_RENDER, regime="california")
        at_36 = {name: design.cci(PDF_RENDER, 36.0) for name, design in designs.items()}
        assert at_36["ProLiant"] == max(at_36.values())

    def test_pixel_best_for_dijkstra(self):
        designs = paper_cloudlets(DIJKSTRA, regime="california")
        at_36 = {name: design.cci(DIJKSTRA, 36.0) for name, design in designs.items()}
        assert min(at_36, key=at_36.get) == "Pixel 3A"

    def test_solar_regime_lowers_cci_for_everyone(self):
        ca = paper_cloudlets(SGEMM, regime="california")
        solar = paper_cloudlets(SGEMM, regime="solar")
        for name in ca:
            assert solar[name].cci(SGEMM, 36.0) < ca[name].cci(SGEMM, 36.0)

    def test_zero_carbon_leaves_only_embodied_for_new_server(self):
        server = poweredge_baseline(zero_carbon())
        components = server.carbon_components(36.0)
        assert components.operational_g == 0.0
        assert components.total_g == components.embodied_g


class TestIndividualFactories:
    def test_factories_return_sensible_designs(self):
        assert proliant_cloudlet(SGEMM).n_devices == 20
        assert thinkpad_cloudlet(SGEMM).n_devices == 17
        assert pixel_cloudlet_design(PDF_RENDER).n_devices == 22
        assert nexus4_cloudlet_design(DIJKSTRA).n_devices == 37

    def test_thinkpad_without_smart_charging_has_no_plugs(self):
        design = thinkpad_cloudlet(SGEMM, smart_charging=False)
        assert design.peripherals.total_embodied_kg == 0.0
