"""Forecast models: perfect, persistence, and the noisy oracle."""

import numpy as np
import pytest

from repro import units
from repro.forecast import (
    FORECAST_MODELS,
    NoisyOracleForecast,
    PerfectForecast,
    PersistenceForecast,
    forecast_model_by_name,
)
from repro.fleet.sites import regional_trace


@pytest.fixture(scope="module")
def trace():
    return regional_trace("caiso-like", n_days=4, seed=2021)


HOUR = units.SECONDS_PER_HOUR
DAY = units.SECONDS_PER_DAY


class TestPerfectForecast:
    def test_window_is_the_true_trace(self, trace):
        start = 2 * DAY
        window = PerfectForecast().window(trace, start, 24)
        times = start + np.arange(24) * HOUR
        assert np.array_equal(window, trace.intensities_at(times, wrap=True))

    def test_window_wraps_past_the_trace_end(self, trace):
        window = PerfectForecast().window(trace, 3 * DAY + 20 * HOUR, 12)
        assert window.shape == (12,)
        assert np.all(np.isfinite(window))

    def test_bad_horizon_rejected(self, trace):
        with pytest.raises(ValueError, match="horizon"):
            PerfectForecast().window(trace, 0.0, 0)


class TestPersistenceForecast:
    def test_equals_the_trace_shifted_one_day(self, trace):
        start = 2 * DAY
        window = PersistenceForecast().window(trace, start, 24)
        yesterday = PerfectForecast().window(trace, start - DAY, 24)
        assert np.array_equal(window, yesterday)

    def test_mid_day_windows_shift_too(self, trace):
        start = DAY + 6 * HOUR
        window = PersistenceForecast().window(trace, start, 36)
        times = start - DAY + np.arange(36) * HOUR
        assert np.array_equal(window, trace.intensities_at(times, wrap=True))

    def test_first_day_has_no_forecast(self, trace):
        assert PersistenceForecast().window(trace, 0.0, 24) is None
        assert PersistenceForecast().window(trace, DAY - HOUR, 24) is None
        assert PersistenceForecast().window(trace, DAY, 24) is not None


class TestNoisyOracleForecast:
    def test_sigma_zero_equals_perfect(self, trace):
        noisy = NoisyOracleForecast(noise_sigma=0.0, seed=7)
        perfect = PerfectForecast()
        for start in (0.0, DAY, 2 * DAY + 5 * HOUR):
            assert np.array_equal(
                noisy.window(trace, start, 24), perfect.window(trace, start, 24)
            )

    def test_seed_determinism(self, trace):
        first = NoisyOracleForecast(noise_sigma=0.3, seed=11)
        second = NoisyOracleForecast(noise_sigma=0.3, seed=11)
        assert np.array_equal(
            first.window(trace, DAY, 24), second.window(trace, DAY, 24)
        )

    def test_determinism_is_call_order_independent(self, trace):
        model = NoisyOracleForecast(noise_sigma=0.3, seed=11)
        late_then_early = (
            model.window(trace, 2 * DAY, 24),
            model.window(trace, DAY, 24),
        )
        fresh = NoisyOracleForecast(noise_sigma=0.3, seed=11)
        assert np.array_equal(fresh.window(trace, DAY, 24), late_then_early[1])
        assert np.array_equal(fresh.window(trace, 2 * DAY, 24), late_then_early[0])

    def test_different_seeds_and_sites_differ(self, trace):
        a = NoisyOracleForecast(noise_sigma=0.3, seed=1).window(trace, DAY, 24)
        b = NoisyOracleForecast(noise_sigma=0.3, seed=2).window(trace, DAY, 24)
        assert not np.array_equal(a, b)
        model = NoisyOracleForecast(noise_sigma=0.3, seed=1)
        assert not np.array_equal(
            model.window(trace, DAY, 24, site_index=0),
            model.window(trace, DAY, 24, site_index=1),
        )

    def test_noise_is_multiplicative_and_positive(self, trace):
        window = NoisyOracleForecast(noise_sigma=0.5, seed=3).window(trace, DAY, 48)
        assert np.all(window > 0)
        truth = PerfectForecast().window(trace, DAY, 48)
        assert not np.array_equal(window, truth)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError, match="sigma"):
            NoisyOracleForecast(noise_sigma=-0.1)


class TestRegistry:
    def test_every_bundled_model_resolves(self):
        from repro.forecast.models import DAYAHEAD_SAMPLE_CSV

        for name in FORECAST_MODELS:
            model = forecast_model_by_name(
                name, noise_sigma=0.2, seed=5, csv_path=DAYAHEAD_SAMPLE_CSV
            )
            assert model.name == name

    def test_noisy_carries_its_parameters(self):
        model = forecast_model_by_name("noisy", noise_sigma=0.4, seed=9)
        assert model.noise_sigma == 0.4
        assert model.seed == 9

    def test_unknown_name_lists_the_known_models(self):
        with pytest.raises(ValueError, match="perfect"):
            forecast_model_by_name("clairvoyant")
