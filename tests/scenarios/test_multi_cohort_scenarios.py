"""Mixed-cohort sites through the declarative scenario layer."""

import numpy as np
import pytest

from repro.scenarios import (
    DemandSpec,
    DeviceMixSpec,
    ScenarioRunner,
    ScenarioSpec,
    ScenarioValidationError,
    SiteSpec,
    TraceSpec,
    get_scenario,
    run_scenario,
)


def mixed_spec(**kwargs) -> ScenarioSpec:
    defaults = dict(
        name="mixed-tiny",
        sites=(
            SiteSpec(
                name="junkyard",
                trace=TraceSpec(kind="regional", region="caiso-like", n_days=3),
                cohorts=(
                    DeviceMixSpec(device="Pixel 3A", count=20),
                    DeviceMixSpec(
                        device="Nexus 4", count=20, requests_per_device_s=8.0
                    ),
                ),
            ),
        ),
        # High enough that the marginal-CCI waterfill must spill past the
        # efficient Pixel cohort into the Nexus cohort.
        demand=DemandSpec(fraction_of_capacity=0.85),
        duration_days=2,
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


# ---------------------------------------------------------------------------
# Spec: round trips, overrides, validation
# ---------------------------------------------------------------------------


class TestCohortsSpec:
    def test_round_trips_through_dict_and_json(self):
        spec = mixed_spec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_device_mixes_prefers_cohorts(self):
        spec = mixed_spec()
        assert len(spec.sites[0].device_mixes) == 2
        assert spec.sites[0].total_devices == 40
        single = SiteSpec(name="solo")
        assert single.device_mixes == (single.devices,)

    def test_dotted_override_reaches_into_cohorts(self):
        spec = mixed_spec().with_overrides({"sites.0.cohorts.1.count": 55})
        assert spec.sites[0].cohorts[1].count == 55
        assert spec.sites[0].cohorts[0].count == 20

    def test_bad_cohort_count_names_the_path(self):
        with pytest.raises(ScenarioValidationError, match=r"sites\.0\.cohorts\.1"):
            mixed_spec().with_overrides({"sites.0.cohorts.1.count": 0})

    def test_unknown_cohort_device_names_the_path(self):
        spec = mixed_spec().with_overrides(
            {"sites.0.cohorts.1.device": "Fairphone 2"}
        )
        with pytest.raises(
            ScenarioValidationError, match=r"sites\.0\.cohorts\.1\.device"
        ):
            ScenarioRunner(spec).build_sites()


# ---------------------------------------------------------------------------
# Runner: resolution and results
# ---------------------------------------------------------------------------


class TestMixedRunner:
    def test_builds_one_site_with_two_cohorts(self):
        sites = ScenarioRunner(mixed_spec()).build_sites()
        assert len(sites) == 1
        assert [entry.device.name for entry in sites[0].cohorts] == [
            "Pixel 3A",
            "Nexus 4",
        ]
        assert sites[0].cohorts[1].requests_per_device_s == 8.0

    def test_nominal_capacity_sums_cohorts(self):
        runner = ScenarioRunner(mixed_spec())
        assert runner.nominal_capacity_rps() == pytest.approx(
            20 * 20.0 + 20 * 8.0
        )

    def test_single_cohort_site_is_bitwise_equal_to_devices_spelling(self):
        """cohorts=(one mix,) and devices=mix resolve to identical results."""
        legacy = run_scenario(
            ScenarioSpec(
                name="solo",
                sites=(
                    SiteSpec(
                        name="ca",
                        trace=TraceSpec(kind="regional", region="caiso-like",
                                        n_days=3),
                        devices=DeviceMixSpec(device="Pixel 3A", count=15),
                    ),
                ),
                duration_days=2,
            )
        )
        via_cohorts = run_scenario(
            ScenarioSpec(
                name="solo",
                sites=(
                    SiteSpec(
                        name="ca",
                        trace=TraceSpec(kind="regional", region="caiso-like",
                                        n_days=3),
                        cohorts=(DeviceMixSpec(device="Pixel 3A", count=15),),
                    ),
                ),
                duration_days=2,
            )
        )
        assert legacy.summary_dict() == via_cohorts.summary_dict()
        assert np.array_equal(
            legacy.report.served_rps, via_cohorts.report.served_rps
        )
        assert np.array_equal(
            legacy.report.operational_g, via_cohorts.report.operational_g
        )
        assert np.array_equal(
            legacy.report.active_devices, via_cohorts.report.active_devices
        )

    def test_mixed_run_reports_per_cohort_series(self):
        result = run_scenario(mixed_spec())
        report = result.report
        assert report.has_cohort_series
        assert report.cohort_labels == (
            "junkyard/Pixel 3A",
            "junkyard/Nexus 4",
        )
        summaries = report.cohort_summaries()
        assert [s.site for s in summaries] == ["junkyard", "junkyard"]
        assert all(s.served_requests > 0 for s in summaries)

    def test_economics_prices_each_device_type(self):
        """Mixed-site purchase = sum of per-type purchases + peripherals."""
        from repro.devices.catalog import get_device

        result = run_scenario(mixed_spec())
        cost = result.site_costs["junkyard"]
        expected_purchase = (
            20 * get_device("Pixel 3A").purchase_price_usd
            + 20 * get_device("Nexus 4").purchase_price_usd
        )
        assert cost.purchase_usd == pytest.approx(expected_purchase)
        assert cost.peripherals_usd > 0
        assert cost.energy_usd > 0

    def test_mixed_dispatch_wear_priced_per_type(self):
        """Dispatched throughput shows up as maintenance on a mixed site."""
        spec = mixed_spec().with_overrides(
            {"charging.coupling": "dispatch", "routing.latency_probe_s": 0}
        )
        dispatched = run_scenario(spec)
        decoupled = run_scenario(
            spec.with_overrides({"charging.coupling": "none"})
        )
        assert dispatched.report.total_battery_discharge_kwh > 0
        wear = (
            dispatched.site_costs["junkyard"].maintenance_usd
            - decoupled.site_costs["junkyard"].maintenance_usd
        )
        assert wear > 0

    def test_migrated_preset_runs_end_to_end(self):
        spec = get_scenario("heterogeneous-cohorts").with_overrides(
            {"duration_days": 1}
        )
        result = run_scenario(spec)
        assert len(result.report.site_names) == 1
        assert result.report.n_cohorts == 2
        assert result.report.total_served_requests > 0
        served = result.report.cohort_served_rps.sum(axis=0)
        # Marginal-CCI fills the efficient Pixel cohort first; the Nexus
        # cohort only catches peak-hour spill.
        assert served[0] > served[1] >= 0
