"""Table data builders: one function per table of the paper."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro.cluster.datacenter import table4_projections
from repro.cluster.sizing import devices_needed
from repro.core.reuse import CLOUDLET_SCENARIO, component_carbon_table
from repro.devices.benchmarks import TABLE1_BENCHMARKS, MicroBenchmark
from repro.devices.catalog import NEXUS_4, POWEREDGE_R740, TABLE1_DEVICES
from repro.devices.power import LIGHT_MEDIUM, LoadProfile
from repro.devices.specs import DeviceSpec


@dataclass(frozen=True)
class Table1Row:
    """One device row of Table 1."""

    device: str
    year: int
    scores: Mapping[str, Tuple[float, float]]
    devices_needed: Mapping[str, int]


def table1_geekbench(
    devices: Sequence[DeviceSpec] = TABLE1_DEVICES,
    baseline: DeviceSpec = POWEREDGE_R740,
    benchmarks: Sequence[MicroBenchmark] = TABLE1_BENCHMARKS,
) -> Tuple[Table1Row, ...]:
    """Reproduce Table 1: per-device benchmark scores and server-equivalence N."""
    rows = []
    for device in devices:
        if device.benchmark_suite is None:
            raise ValueError(f"{device.name} has no benchmark suite")
        scores = {}
        needed = {}
        for benchmark in benchmarks:
            score = device.benchmark_suite.score(benchmark)
            scores[benchmark.name] = (score.single_core, score.multi_core)
            needed[benchmark.name] = devices_needed(device, benchmark, baseline)
        rows.append(
            Table1Row(
                device=device.name,
                year=device.release_year,
                scores=scores,
                devices_needed=needed,
            )
        )
    return tuple(rows)


@dataclass(frozen=True)
class Table2Row:
    """One device row of Table 2 (power versus CPU load)."""

    device: str
    p_100: float
    p_50: float
    p_10: float
    p_idle: float
    p_avg: float


def table2_power(
    devices: Sequence[DeviceSpec] = TABLE1_DEVICES,
    load_profile: LoadProfile = LIGHT_MEDIUM,
) -> Tuple[Table2Row, ...]:
    """Reproduce Table 2: measured power points and the light-medium average."""
    rows = []
    for device in devices:
        model = device.power_model
        rows.append(
            Table2Row(
                device=device.name,
                p_100=model.power_at(1.0),
                p_50=model.power_at(0.5),
                p_10=model.power_at(0.1),
                p_idle=model.power_at(0.0),
                p_avg=model.average_power(load_profile),
            )
        )
    return tuple(rows)


@dataclass(frozen=True)
class Table3Data:
    """Component carbon breakdown and the cloudlet reuse factor (Table 3)."""

    device: str
    components: Mapping[str, Mapping[str, float]]
    cloudlet_reuse_factor: float


def table3_components(device: DeviceSpec = NEXUS_4) -> Table3Data:
    """Reproduce Table 3 and the Section 3.4 reuse-factor example."""
    return Table3Data(
        device=device.name,
        components=component_carbon_table(device),
        cloudlet_reuse_factor=CLOUDLET_SCENARIO.factor(device),
    )


def table4_datacenter(lifetime_months: float = 36.0) -> Dict[str, Dict[str, float]]:
    """Reproduce Table 4: datacenter-scale CCI projections plus PUE."""
    return table4_projections(lifetime_months)
