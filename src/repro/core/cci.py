"""Computational Carbon Intensity (CCI) — the paper's primary contribution.

CCI is the CO2-equivalent released per unit of useful computational work,
amortised over the full service lifetime of a device or system
(Equations 1-2):

.. math::

    \\mathrm{CCI} = \\frac{C_M + C_C + C_N}{\\sum_{\\mathrm{lifetime}} \\mathrm{ops}}

The metric rewards operational efficiency (through C_C), manufacturing
efficiency (through C_M), and the reuse of already-manufactured devices
(reused hardware has its C_M zeroed), while expressing everything per unit of
work so that devices of very different scales can be compared.

This module provides:

* :func:`computational_carbon_intensity` — the bare Equation 1 ratio;
* :class:`DeviceCarbonModel` — lifetime carbon and work for a single device
  under a load profile and an energy mix, including battery replacements and
  attached peripherals, with :meth:`~DeviceCarbonModel.cci` /
  :meth:`~DeviceCarbonModel.cci_series` producing the Figure 2/6-style
  lifetime curves;
* :func:`second_life_cci` — the alternate two-life formulation of
  Equation 7, which charges the original manufacturing carbon but also
  credits the work performed during the device's first life.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro import units
from repro.core.carbon import (
    WIFI_ENERGY_INTENSITY_J_PER_BYTE,
    CarbonComponents,
    networking_carbon_g,
    operational_carbon_g,
)
from repro.devices.battery import replacement_carbon_kg
from repro.devices.benchmarks import MicroBenchmark
from repro.devices.power import LIGHT_MEDIUM, LoadProfile
from repro.devices.specs import DeviceSpec
from repro.grid.mix import EnergyMix, california


def computational_carbon_intensity(total_carbon_g: float, total_work: float) -> float:
    """CCI = total carbon / total useful work (Equation 1).

    ``total_work`` is in whatever unit of work the caller chose (Gflop,
    Mpixel, requests, ...); the result is grams of CO2e per that unit.
    """
    if total_carbon_g < 0:
        raise ValueError("total carbon must be non-negative")
    if total_work <= 0:
        raise ValueError("total work must be positive")
    return total_carbon_g / total_work


@dataclass(frozen=True)
class WorkRate:
    """Useful work performed per second at 100 % utilisation.

    This generalises the micro-benchmark throughputs of Table 1 (Gflop/s,
    Mpixel/s, ...) to arbitrary work units such as served requests, so the
    same CCI machinery covers both Figure 2 and Figure 9.
    """

    unit: str
    per_second_at_full_load: float

    def __post_init__(self) -> None:
        if self.per_second_at_full_load <= 0:
            raise ValueError("work rate must be positive")

    @classmethod
    def from_benchmark(cls, device: DeviceSpec, benchmark: Union[MicroBenchmark, str]) -> "WorkRate":
        """Derive the work rate from a device's multi-core benchmark score."""
        if device.benchmark_suite is None:
            raise ValueError(f"{device.name} has no benchmark suite")
        score = device.benchmark_suite.score(benchmark)
        return cls(
            unit=score.benchmark.work_unit,
            per_second_at_full_load=score.throughput,
        )


@dataclass(frozen=True)
class DeviceCarbonModel:
    """Lifetime carbon and work model for a single device.

    Parameters
    ----------
    device:
        The device spec being operated.
    load_profile:
        Time-in-mode distribution; defaults to the paper's light-medium
        regime.
    energy_mix:
        Grid scenario supplying the device (defaults to the Californian mean).
    reused:
        When True (the junkyard case) the device's own embodied carbon is
        treated as already paid and contributes zero to C_M.
    smart_charging:
        Apply the energy mix's smart-charging discount to operational carbon.
        Only meaningful for battery-backed devices; requesting it for a
        device without a battery raises.
    include_battery_replacement:
        Charge the embodied carbon of replacement battery packs per
        Equation 10 (requires a battery spec).
    network_rate_bytes_per_s / network_energy_intensity_j_per_byte:
        Sustained networking rate and technology energy intensity for the
        C_N term; both default to zero / WiFi so single-device analyses can
        simply omit networking as the paper does in Section 3.4.
    extra_embodied_kg:
        Additional one-off embodied carbon attributed to this device (e.g.
        its share of a shared fan or a per-device smart plug).
    extra_power_w:
        Additional constant power draw attributed to this device (e.g. its
        share of fan power).
    """

    device: DeviceSpec
    load_profile: LoadProfile = LIGHT_MEDIUM
    energy_mix: EnergyMix = field(default_factory=california)
    reused: bool = True
    smart_charging: bool = False
    include_battery_replacement: bool = False
    network_rate_bytes_per_s: float = 0.0
    network_energy_intensity_j_per_byte: float = WIFI_ENERGY_INTENSITY_J_PER_BYTE
    extra_embodied_kg: float = 0.0
    extra_power_w: float = 0.0

    def __post_init__(self) -> None:
        if self.extra_embodied_kg < 0:
            raise ValueError("extra embodied carbon must be non-negative")
        if self.extra_power_w < 0:
            raise ValueError("extra power must be non-negative")
        if self.network_rate_bytes_per_s < 0:
            raise ValueError("network rate must be non-negative")
        if self.smart_charging and self.device.battery is None:
            raise ValueError(
                f"{self.device.name} has no battery; smart charging is not applicable"
            )
        if self.include_battery_replacement and self.device.battery is None:
            raise ValueError(
                f"{self.device.name} has no battery; cannot include battery replacement"
            )

    # ------------------------------------------------------------------
    # Power and energy
    # ------------------------------------------------------------------

    @property
    def average_power_w(self) -> float:
        """Average wall power of the device (plus attributed extras)."""
        return self.device.average_power_w(self.load_profile) + self.extra_power_w

    def energy_kwh(self, lifetime_months: float) -> float:
        """Wall energy drawn over the lifetime, in kWh."""
        duration_s = units.months_to_seconds(lifetime_months)
        return units.joules_to_kwh(self.average_power_w * duration_s)

    # ------------------------------------------------------------------
    # Carbon
    # ------------------------------------------------------------------

    def embodied_carbon_g(self, lifetime_months: float) -> float:
        """C_M: device embodied carbon (if new) + batteries + extras, in grams."""
        kg = 0.0 if self.reused else self.device.embodied_carbon_kgco2e
        kg += self.extra_embodied_kg
        if self.include_battery_replacement and self.device.battery is not None:
            kg += replacement_carbon_kg(
                self.device.battery, self.average_power_w, lifetime_months
            )
        return units.kg_to_grams(kg)

    def operational_carbon_g(self, lifetime_months: float) -> float:
        """C_C: operational carbon over the lifetime, in grams."""
        intensity = self.energy_mix.effective_intensity_g_per_kwh(
            smart_charging=self.smart_charging
        )
        duration_s = units.months_to_seconds(lifetime_months)
        return operational_carbon_g(self.average_power_w, duration_s, intensity)

    def networking_carbon_g(self, lifetime_months: float) -> float:
        """C_N: networking carbon over the lifetime, in grams."""
        if self.network_rate_bytes_per_s == 0.0:
            return 0.0
        intensity = self.energy_mix.effective_intensity_g_per_kwh(
            smart_charging=self.smart_charging
        )
        duration_s = units.months_to_seconds(lifetime_months)
        return networking_carbon_g(
            self.network_rate_bytes_per_s,
            self.network_energy_intensity_j_per_byte,
            duration_s,
            intensity,
        )

    def carbon_components(self, lifetime_months: float) -> CarbonComponents:
        """All three CCI numerator terms for the given lifetime."""
        if lifetime_months <= 0:
            raise ValueError("lifetime must be positive")
        return CarbonComponents(
            embodied_g=self.embodied_carbon_g(lifetime_months),
            operational_g=self.operational_carbon_g(lifetime_months),
            networking_g=self.networking_carbon_g(lifetime_months),
        )

    # ------------------------------------------------------------------
    # Work and CCI
    # ------------------------------------------------------------------

    def work_rate(self, benchmark: Union[MicroBenchmark, str, WorkRate]) -> WorkRate:
        """Resolve a benchmark name/object or explicit :class:`WorkRate`."""
        if isinstance(benchmark, WorkRate):
            return benchmark
        return WorkRate.from_benchmark(self.device, benchmark)

    def total_work(
        self, benchmark: Union[MicroBenchmark, str, WorkRate], lifetime_months: float
    ) -> float:
        """Useful work over the lifetime (Equation 6's average throughput x time)."""
        if lifetime_months <= 0:
            raise ValueError("lifetime must be positive")
        rate = self.work_rate(benchmark)
        average_per_second = self.load_profile.average_throughput(
            rate.per_second_at_full_load
        )
        return average_per_second * units.months_to_seconds(lifetime_months)

    def cci(
        self, benchmark: Union[MicroBenchmark, str, WorkRate], lifetime_months: float
    ) -> float:
        """CCI (g CO2e per unit of work) at the given lifetime."""
        components = self.carbon_components(lifetime_months)
        work = self.total_work(benchmark, lifetime_months)
        return computational_carbon_intensity(components.total_g, work)

    def cci_series(
        self,
        benchmark: Union[MicroBenchmark, str, WorkRate],
        lifetime_months: Sequence[float],
    ) -> np.ndarray:
        """CCI evaluated at each lifetime in ``lifetime_months`` (Figure 2/6 curves)."""
        months = np.asarray(list(lifetime_months), dtype=float)
        if np.any(months <= 0):
            raise ValueError("all lifetimes must be positive")
        return np.array([self.cci(benchmark, m) for m in months])

    # ------------------------------------------------------------------
    # Variants
    # ------------------------------------------------------------------

    def as_new(self) -> "DeviceCarbonModel":
        """Return a copy that charges the device's own embodied carbon (not reused)."""
        return DeviceCarbonModel(
            device=self.device,
            load_profile=self.load_profile,
            energy_mix=self.energy_mix,
            reused=False,
            smart_charging=self.smart_charging,
            include_battery_replacement=self.include_battery_replacement,
            network_rate_bytes_per_s=self.network_rate_bytes_per_s,
            network_energy_intensity_j_per_byte=self.network_energy_intensity_j_per_byte,
            extra_embodied_kg=self.extra_embodied_kg,
            extra_power_w=self.extra_power_w,
        )


def second_life_cci(
    first_life: DeviceCarbonModel,
    second_life: DeviceCarbonModel,
    benchmark: Union[MicroBenchmark, str, WorkRate],
    first_life_months: float,
    second_life_months: float,
) -> float:
    """The alternate CCI of Equation 7, spanning a device's first and second lives.

    The first life charges the original manufacturing carbon (the model is
    forced to its "new" variant) and both lives contribute operational and
    networking carbon as well as useful work.  The paper notes this form is
    hard to use in practice because first-life telemetry is unavailable for
    junk-drawer devices; it is provided for completeness and for ablation
    benches.
    """
    if first_life.device.name != second_life.device.name:
        raise ValueError(
            "first and second life models must describe the same device "
            f"({first_life.device.name!r} vs {second_life.device.name!r})"
        )
    first = first_life.as_new()
    first_components = first.carbon_components(first_life_months)
    second_components = second_life.carbon_components(second_life_months)
    total_carbon = first_components.total_g + second_components.total_g
    total_work = first.total_work(benchmark, first_life_months) + second_life.total_work(
        benchmark, second_life_months
    )
    return computational_carbon_intensity(total_carbon, total_work)
