"""Reports rendered from the store alone — provably without simulating."""

import pytest

from repro.scenarios import ScenarioRunner, get_scenario
from repro.scenarios.sweep import sweep_scenario
from repro.analysis import render_sweep_result
from repro.store import (
    STORE_REPORTS,
    ExperimentStore,
    StoreError,
    render_grid_report,
    render_store_report,
    sweep_from_store,
)

FAST = {"duration_days": 2, "routing.latency_probe_s": 0.0}
AXES = {"demand.fraction_of_capacity": [0.3, 0.6]}


@pytest.fixture(scope="module")
def warmed(tmp_path_factory):
    """A store holding one swept grid, plus the live sweep for comparison."""
    spec = get_scenario("carbon-buffer").with_overrides(FAST)
    store = ExperimentStore(str(tmp_path_factory.mktemp("es") / "store"))
    sweep = sweep_scenario(spec, AXES, store=store)
    return store, spec, sweep


def _forbid_simulation(monkeypatch):
    def explode(self):
        raise AssertionError("report path must not simulate")

    monkeypatch.setattr(ScenarioRunner, "run", explode)


def test_grid_report_reassembles_the_sweep_bitwise(warmed, monkeypatch):
    store, spec, sweep = warmed
    _forbid_simulation(monkeypatch)
    rebuilt = sweep_from_store(store, spec, AXES)
    assert rebuilt.axes == sweep.axes
    for a, b in zip(sweep.cells, rebuilt.cells):
        assert a.overrides == b.overrides
        assert a.result.summary_dict() == b.result.summary_dict()
    assert render_grid_report(store, spec, AXES) == render_sweep_result(sweep)


def test_grid_report_names_missing_cells(warmed, monkeypatch):
    store, spec, _ = warmed
    _forbid_simulation(monkeypatch)
    wider = {"demand.fraction_of_capacity": [0.3, 0.6, 0.9]}
    with pytest.raises(StoreError, match="1 of 3 grid cells") as excinfo:
        sweep_from_store(store, spec, wider)
    assert "demand.fraction_of_capacity=0.9" in str(excinfo.value)
    assert "--store" in str(excinfo.value)


def test_grid_report_requires_axes(warmed):
    store, spec, _ = warmed
    with pytest.raises(StoreError, match="at least one"):
        sweep_from_store(store, spec, {})


def test_registered_reports_render_without_simulation(warmed, monkeypatch):
    store, _, _ = warmed
    _forbid_simulation(monkeypatch)
    assert {"summary", "scenarios", "regret"} <= set(STORE_REPORTS)
    summary = render_store_report("summary", store)
    assert "carbon-buffer" in summary and "2 stored experiment(s)" in summary
    scenarios = render_store_report("scenarios", store)
    assert "carbon-buffer" in scenarios and "2" in scenarios
    # No forecast runs stored: the regret report says so instead of erroring.
    assert "no stored forecast" in render_store_report("regret", store)


def test_regret_report_covers_forecast_entries(tmp_path, monkeypatch):
    spec = get_scenario("forecast-buffer").with_overrides(
        {**FAST, "forecast.model": "noisy", "forecast.noise_sigma": 0.2}
    )
    store = ExperimentStore(str(tmp_path / "es"))
    store.put(ScenarioRunner(spec).run())
    _forbid_simulation(monkeypatch)
    rendered = render_store_report("regret", store)
    assert "noisy" in rendered and "forecast-buffer" in rendered


def test_unknown_report_name_lists_registered(warmed):
    store, _, _ = warmed
    with pytest.raises(StoreError, match="summary"):
        render_store_report("nope", store)


def test_custom_reports_register(warmed):
    store, _, _ = warmed

    from repro.store import register_store_report

    @register_store_report("test-entry-count", "test probe")
    def _count(s):
        return f"{len(s)} entries"

    try:
        assert render_store_report("test-entry-count", store) == "2 entries"
    finally:
        STORE_REPORTS.pop("test-entry-count", None)
