"""Geekbench-style micro-benchmark scores for devices (paper Table 1).

The paper characterises raw device performance with four Geekbench 4
micro-benchmarks, each measured in its own natural unit of work:

========== ==================== ==========================================
Benchmark  Throughput unit      Unit of work used for CCI denominators
========== ==================== ==========================================
SGEMM      Gflops (Gflop/s)     Gflop
PDF Render Mpixels/s            Mpixel
Dijkstra   MTE/s (mega transfer Mte (million Dijkstra pair computations)
           edges per second)
Mem. Copy  GB/s                 GB copied
========== ==================== ==========================================

Multi-core throughput is treated as the total computational capability of the
device (the paper's convention), and the single-core figure is retained for
reporting.  :class:`BenchmarkSuite` is attached to a
:class:`~repro.devices.specs.DeviceSpec` and queried by the CCI model, the
cluster-sizing logic (Table 1's *N* column), and the serving simulator's
speed calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple


@dataclass(frozen=True)
class MicroBenchmark:
    """Metadata describing one micro-benchmark.

    ``throughput_unit`` is the unit in which scores are expressed (per
    second), and ``work_unit`` the corresponding unit of work accumulated
    over a lifetime (used as the CCI denominator, e.g. ``mgCO2e / Gflop``).
    """

    name: str
    throughput_unit: str
    work_unit: str
    description: str = ""

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


SGEMM = MicroBenchmark(
    name="SGEMM",
    throughput_unit="Gflops",
    work_unit="Gflop",
    description="Single-precision dense matrix multiply",
)
PDF_RENDER = MicroBenchmark(
    name="PDF Render",
    throughput_unit="Mpixels/sec",
    work_unit="Mpixel",
    description="PDF rasterisation throughput",
)
DIJKSTRA = MicroBenchmark(
    name="Dijkstra",
    throughput_unit="MTE/sec",
    work_unit="MTE",
    description="Shortest-path pair computations",
)
MEMORY_COPY = MicroBenchmark(
    name="Memory Copy",
    throughput_unit="GB/sec",
    work_unit="GB",
    description="Large memory copy bandwidth",
)

#: The four Table 1 benchmarks in the order the paper reports them.
TABLE1_BENCHMARKS: Tuple[MicroBenchmark, ...] = (
    SGEMM,
    PDF_RENDER,
    DIJKSTRA,
    MEMORY_COPY,
)

_BENCHMARKS_BY_NAME: Dict[str, MicroBenchmark] = {
    bench.name: bench for bench in TABLE1_BENCHMARKS
}


def benchmark_by_name(name: str) -> MicroBenchmark:
    """Look up one of the Table 1 benchmarks by its paper name."""
    try:
        return _BENCHMARKS_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BENCHMARKS_BY_NAME))
        raise KeyError(f"unknown benchmark {name!r}; known benchmarks: {known}") from None


@dataclass(frozen=True)
class BenchmarkScore:
    """Single- and multi-core throughput of one device on one benchmark."""

    benchmark: MicroBenchmark
    single_core: float
    multi_core: float

    def __post_init__(self) -> None:
        if self.single_core <= 0 or self.multi_core <= 0:
            raise ValueError(
                f"{self.benchmark.name}: scores must be positive "
                f"(single={self.single_core}, multi={self.multi_core})"
            )
        if self.multi_core < self.single_core:
            raise ValueError(
                f"{self.benchmark.name}: multi-core score {self.multi_core} is "
                f"lower than single-core score {self.single_core}"
            )

    @property
    def throughput(self) -> float:
        """Total device throughput (multi-core), in the benchmark's unit/s."""
        return self.multi_core

    def speedup_over(self, other: "BenchmarkScore") -> float:
        """Multi-core throughput ratio of this device over ``other``."""
        if self.benchmark.name != other.benchmark.name:
            raise ValueError(
                f"cannot compare {self.benchmark.name} with {other.benchmark.name}"
            )
        return self.multi_core / other.multi_core


@dataclass(frozen=True)
class BenchmarkSuite:
    """The set of benchmark scores measured for one device."""

    scores: Mapping[str, BenchmarkScore]

    def __post_init__(self) -> None:
        for key, score in self.scores.items():
            if key != score.benchmark.name:
                raise ValueError(
                    f"suite key {key!r} does not match benchmark name "
                    f"{score.benchmark.name!r}"
                )

    @classmethod
    def from_table1_row(
        cls,
        sgemm: Tuple[float, float],
        pdf_render: Tuple[float, float],
        dijkstra: Tuple[float, float],
        memory_copy: Tuple[float, float],
    ) -> "BenchmarkSuite":
        """Build a suite from the four ``(single, multi)`` pairs of a Table 1 row."""
        entries = {
            SGEMM.name: BenchmarkScore(SGEMM, *sgemm),
            PDF_RENDER.name: BenchmarkScore(PDF_RENDER, *pdf_render),
            DIJKSTRA.name: BenchmarkScore(DIJKSTRA, *dijkstra),
            MEMORY_COPY.name: BenchmarkScore(MEMORY_COPY, *memory_copy),
        }
        return cls(scores=entries)

    def score(self, benchmark: "MicroBenchmark | str") -> BenchmarkScore:
        """Return the score for ``benchmark`` (by object or name)."""
        name = benchmark if isinstance(benchmark, str) else benchmark.name
        try:
            return self.scores[name]
        except KeyError:
            known = ", ".join(sorted(self.scores))
            raise KeyError(
                f"device has no score for {name!r}; available: {known}"
            ) from None

    def throughput(self, benchmark: "MicroBenchmark | str") -> float:
        """Multi-core throughput for ``benchmark`` in its natural unit per second."""
        return self.score(benchmark).throughput

    def benchmarks(self) -> Iterable[MicroBenchmark]:
        """Iterate over the benchmarks present in this suite."""
        return tuple(score.benchmark for score in self.scores.values())

    def has(self, benchmark: "MicroBenchmark | str") -> bool:
        """True if the suite includes a score for ``benchmark``."""
        name = benchmark if isinstance(benchmark, str) else benchmark.name
        return name in self.scores

    def relative_performance(
        self, other: "BenchmarkSuite", benchmark: Optional["MicroBenchmark | str"] = None
    ) -> Dict[str, float]:
        """Per-benchmark multi-core throughput ratios of this suite over ``other``.

        When ``benchmark`` is given, only that benchmark is compared and a
        single-entry mapping is returned.
        """
        names: Iterable[str]
        if benchmark is None:
            names = [name for name in self.scores if other.has(name)]
        else:
            names = [benchmark if isinstance(benchmark, str) else benchmark.name]
        return {
            name: self.score(name).speedup_over(other.score(name)) for name in names
        }
