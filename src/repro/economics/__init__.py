"""Economic (total-cost-of-ownership) models complementing the carbon analyses."""

from repro.economics.cost import (
    CALIFORNIA_ELECTRICITY_USD_PER_KWH,
    CloudRentalCostModel,
    CostComparison,
    FleetCostModel,
    OwnershipCost,
    cloudlet_vs_cloud_cost,
)

__all__ = [
    "CALIFORNIA_ELECTRICITY_USD_PER_KWH",
    "OwnershipCost",
    "FleetCostModel",
    "CloudRentalCostModel",
    "CostComparison",
    "cloudlet_vs_cloud_cost",
]
