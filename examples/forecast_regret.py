#!/usr/bin/env python3
"""Forecast-aware lookahead dispatch: how much is a better forecast worth?

PR 3's coupled battery dispatch reacts to the *previous* day's intensity
percentiles.  The forecast subsystem (``repro.forecast``) looks forward
instead: a :class:`~repro.forecast.models.ForecastModel` predicts each
site's next hours and the :class:`~repro.forecast.planner.LookaheadPlanner`
ranks them — serve the dirtiest forecast hours from the packs, fund them by
charging at the cleanest.  This example measures what forecast *skill* is
worth:

1. run the ``forecast-buffer`` preset under the perfect (oracle) forecast
   and print the unified result — note the ``forecast dispatch`` line with
   its hindsight/regret accounting;
2. sweep the noisy oracle's sigma from 0 (the oracle itself) upward:
   realised savings degrade smoothly as the forecast's hour ranking erodes,
   and regret — the carbon a hindsight-optimal plan would still have
   avoided — grows monotonically;
3. compare the two non-oracle forecasters the fleet could actually deploy:
   persistence ("yesterday repeats") and the non-forecast previous-day
   percentile heuristic it generalises.

Run with ``python examples/forecast_regret.py``.
"""

from repro.analysis import fig12_forecast_regret, render_scenario_result
from repro.scenarios import get_scenario, run_scenario

N_DAYS = 14
N_DEVICES = 50
SIGMAS = (0.0, 0.2, 0.4, 0.8)


def oracle_scenario() -> None:
    """One perfect-forecast dispatch run with full reporting."""
    spec = get_scenario("forecast-buffer").with_overrides(
        {"duration_days": N_DAYS, "sites.0.devices.count": N_DEVICES,
         "sites.1.devices.count": N_DEVICES}
    )
    print(render_scenario_result(run_scenario(spec)))
    print()


def noise_sweep() -> None:
    """Savings vs forecast quality, regret vs the hindsight-optimal plan."""
    data = fig12_forecast_regret(
        sigmas=SIGMAS, n_days=N_DAYS, n_devices_per_site=N_DEVICES
    )
    print("forecast quality sweep (identical fleets, demand, and routing):")
    print(f"  {'forecast':<24} {'avoided (kg)':>12} {'regret (kg)':>12}")
    for sigma in data.sigmas():
        label = "oracle (sigma=0)" if sigma == 0 else f"noisy oracle sigma={sigma:g}"
        print(
            f"  {label:<24} {data.carbon_avoided_kg(sigma):>12.3f} "
            f"{data.regret_kg(sigma):>12.3f}"
        )
    print(
        f"  {'persistence':<24} {data.persistence_avoided_kg():>12.3f} "
        f"{data.persistence_regret_kg():>12.3f}"
    )
    print(
        f"  {'prev-day heuristic':<24} {data.heuristic_avoided_kg():>12.3f} "
        f"{'-':>12}"
    )
    print()
    print(
        "the oracle bounds the buffer's value; noise erodes it monotonically, "
        "while persistence — a forecast any site can compute — recovers most "
        "of the heuristic's gap on these day-periodic grids."
    )


def main() -> None:
    oracle_scenario()
    noise_sweep()


if __name__ == "__main__":
    main()
